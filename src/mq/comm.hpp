// The mq communicator: an MPI-flavoured message-passing API over threads.
//
// This is the substrate standing in for MPICH-G2 in the paper's
// experiments. Each rank runs on its own thread inside one process; ranks
// exchange real byte buffers through mailboxes. Network heterogeneity is
// *emulated*: every send pays the configured link cost for its byte count
// (scaled by the runtime's time_scale), blocking the sender — which
// reproduces the single-port root behaviour of Section 2.3: a root
// executing scatterv sends to ranks in turn, so receiver i waits for
// receivers 1..i-1 to be served, the "stair effect" of Figure 1.
//
// The collective set mirrors what the paper's application needs:
// barrier, bcast, scatter, scatterv (the load-balancing vehicle),
// gather/gatherv, reduce, allreduce.
#pragma once

#include <cstring>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "mq/fault.hpp"
#include "mq/mailbox.hpp"
#include "mq/request.hpp"

namespace lbs::obs {
class Tracer;
}

namespace lbs::mq {

namespace detail {
struct RuntimeState;
}  // namespace detail

class Comm {
 public:
  Comm(int rank, detail::RuntimeState& state);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // Wall-clock seconds since the runtime started (real time; emulated
  // delays are real sleeps, so this measures the emulated execution).
  [[nodiscard]] double wtime() const;

  // The runtime's real-seconds-per-nominal-second factor.
  [[nodiscard]] double time_scale() const;

  // The runtime's resolved tracer (options.tracer or the global fallback);
  // null when tracing is off. Used by emulate_compute for compute spans
  // and available to rank functions that emit their own events.
  [[nodiscard]] obs::Tracer* tracer() const;

  // -- failure detection (fault injection) ---------------------------------
  // True when `rank` was killed by the injected fault plan — the runtime's
  // stand-in for a grid-level failure detector.
  [[nodiscard]] bool rank_dead(int rank) const;
  // Throws RankCrashed if this rank's own injected crash time has passed.
  // Called by every communication entry point; also useful from long
  // compute loops that want prompt death.
  void check_failures() const;

  // -- point-to-point ------------------------------------------------------
  // Blocking send: pays the emulated link transfer time, then delivers.
  // Tags must be >= 0 (negative tags are reserved for collectives).
  // Under fault injection the message is droppable: it may silently
  // vanish (that is the failure mode send_bytes_with_retry guards).
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);
  Message recv_message(int source, int tag);

  // Deadline-aware receive: waits at most `timeout_seconds` of real time;
  // returns std::nullopt on expiry instead of blocking forever on a dead
  // or degraded peer.
  std::optional<Message> recv_message(int source, int tag,
                                      double timeout_seconds);

  // Bounded-retry send for droppable messages: re-sends (paying the link
  // cost each attempt, with exponential nominal-time backoff between
  // attempts) until the fault layer delivers a copy or the policy's
  // attempts are exhausted. Returns true iff a copy was delivered.
  bool send_bytes_with_retry(int dest, int tag,
                             std::span<const std::byte> payload,
                             const RetryPolicy& policy = {});

  template <typename T>
  void send(int dest, int tag, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, as_bytes(items));
  }
  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    return from_bytes<T>(recv_message(source, tag).payload);
  }
  template <typename T>
  T recv_value(int source, int tag) {
    auto items = recv<T>(source, tag);
    check_single(items.size());
    return items.front();
  }

  // -- nonblocking point-to-point -------------------------------------------
  // The transfer (including its emulated pacing, which holds this rank's
  // NIC) runs on a worker thread; the caller continues immediately. The
  // Comm must outlive the returned Request.
  Request isend_bytes(int dest, int tag, std::vector<std::byte> payload);
  template <typename T>
  Request isend(int dest, int tag, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = as_bytes(items);
    return isend_bytes(dest, tag, std::vector<std::byte>(bytes.begin(), bytes.end()));
  }

  // Completes when a matching message arrives; fetch it with
  // request.take_payload() (+ decode<T>() for typed data) after wait().
  Request irecv(int source, int tag);

  // Decodes a payload previously produced by send/isend of T items.
  template <typename T>
  static std::vector<T> decode(const std::vector<std::byte>& payload) {
    return from_bytes<T>(payload);
  }

  // -- collectives (must be called by every rank) --------------------------
  void barrier();

  template <typename T>
  void bcast(int root, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) internal_send(r, kTagBcast, as_bytes(std::span<const T>(data)));
      }
    } else {
      data = from_bytes<T>(internal_recv(root, kTagBcast).payload);
    }
  }

  // Equal-share scatter (MPI_Scatter): root distributes size()*count items.
  template <typename T>
  std::vector<T> scatter(int root, std::span<const T> send_data, long long count) {
    std::vector<long long> counts(static_cast<std::size_t>(size()), count);
    return scatterv(root, send_data, counts);
  }

  // Parameterized scatter (MPI_Scatterv): counts[r] items to rank r,
  // contiguous, in rank order (root's sends serialize — the stair).
  template <typename T>
  std::vector<T> scatterv(int root, std::span<const T> send_data,
                          std::span<const long long> counts) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_counts(counts.size());
    if (rank_ == root) {
      long long offset = 0;
      std::vector<T> own;
      for (int r = 0; r < size(); ++r) {
        auto count = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
        check_range(offset, count, send_data.size());
        std::span<const T> chunk = send_data.subspan(static_cast<std::size_t>(offset), count);
        if (r == root) {
          own.assign(chunk.begin(), chunk.end());
        } else {
          internal_send(r, kTagScatter, as_bytes(chunk));
        }
        offset += counts[static_cast<std::size_t>(r)];
      }
      return own;
    }
    return from_bytes<T>(internal_recv(root, kTagScatter).payload);
  }

  // Degradation-aware scatter: like scatterv, but the root survives
  // receivers that crash or stop acknowledging. Each receiver's share is
  // sent as an acknowledged chunk (droppable, retried per options.retry);
  // when a receiver times out or is flagged dead, the root evicts it and
  // re-plans *all* of its items (acknowledged chunks included — evicted
  // survivors discard, so every item is delivered exactly once) over the
  // surviving ranks via options.replan. Workers return their final share;
  // an evicted-but-alive worker returns an empty vector. Throws lbs::Error
  // at the root when no workers survive. `report`, if non-null, is filled
  // at the root with who died, when, and what was re-routed.
  template <typename T>
  std::vector<T> scatterv_ft(int root, std::span<const T> send_data,
                             std::span<const long long> counts,
                             const ScattervFtOptions& options = {},
                             FaultReport* report = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      check_counts(counts.size());
      return from_bytes<T>(
          scatterv_ft_root(as_bytes(send_data), counts, sizeof(T), options, report));
    }
    return from_bytes<T>(scatterv_ft_worker(root));
  }

  // Gather with equal or per-rank counts; data lands in rank order at root.
  template <typename T>
  std::vector<T> gatherv(int root, std::span<const T> contribution) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      std::vector<T> all;
      for (int r = 0; r < size(); ++r) {
        if (r == root) {
          all.insert(all.end(), contribution.begin(), contribution.end());
        } else {
          auto chunk = from_bytes<T>(internal_recv(r, kTagGather).payload);
          all.insert(all.end(), chunk.begin(), chunk.end());
        }
      }
      return all;
    }
    internal_send(root, kTagGather, as_bytes(contribution));
    return {};
  }

  // Element-wise reduction at root; all contributions must be equal length.
  template <typename T>
  std::vector<T> reduce(int root, std::span<const T> contribution,
                        const std::function<T(const T&, const T&)>& op) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      std::vector<T> accumulator(contribution.begin(), contribution.end());
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        auto chunk = from_bytes<T>(internal_recv(r, kTagReduce).payload);
        check_same_length(chunk.size(), accumulator.size());
        for (std::size_t i = 0; i < accumulator.size(); ++i) {
          accumulator[i] = op(accumulator[i], chunk[i]);
        }
      }
      return accumulator;
    }
    internal_send(root, kTagReduce, as_bytes(contribution));
    return {};
  }

  template <typename T>
  std::vector<T> allreduce(std::span<const T> contribution,
                           const std::function<T(const T&, const T&)>& op) {
    auto result = reduce<T>(0, contribution, op);
    bcast(0, result);
    return result;
  }

  // Everyone contributes, everyone gets the concatenation in rank order
  // (MPI_Allgatherv): gather to rank 0, then broadcast.
  template <typename T>
  std::vector<T> allgather(std::span<const T> contribution) {
    auto all = gatherv<T>(0, contribution);
    bcast(0, all);
    return all;
  }

  // Personalized all-to-all (MPI_Alltoallv): send_blocks[r] goes to rank
  // r; returns the blocks received, indexed by source rank (a rank's own
  // block passes through untouched).
  template <typename T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& send_blocks) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_counts(send_blocks.size());
    std::vector<std::vector<T>> received(static_cast<std::size_t>(size()));
    // Stagger the send order (start at rank+1) so no pair deadlocks and
    // the root-like rank 0 is not a hotspot.
    for (int offset = 1; offset < size(); ++offset) {
      int peer = (rank_ + offset) % size();
      internal_send(peer, kTagAlltoall,
                    as_bytes(std::span<const T>(send_blocks[static_cast<std::size_t>(peer)])));
    }
    received[static_cast<std::size_t>(rank_)] = send_blocks[static_cast<std::size_t>(rank_)];
    for (int offset = 1; offset < size(); ++offset) {
      int peer = (rank_ + size() - offset) % size();
      received[static_cast<std::size_t>(peer)] =
          from_bytes<T>(internal_recv(peer, kTagAlltoall).payload);
    }
    return received;
  }

  // Combined send+receive with distinct peers (MPI_Sendrecv): issues the
  // send nonblockingly so symmetric exchanges cannot deadlock.
  template <typename T>
  std::vector<T> sendrecv(int dest, int send_tag, std::span<const T> send_data,
                          int source, int recv_tag) {
    auto request = isend<T>(dest, send_tag, send_data);
    auto received = recv<T>(source, recv_tag);
    request.wait();
    return received;
  }

  // -- internal plumbing for SubComm (mq/subcomm.hpp) -----------------------
  // Sub-communicators route their collectives through the parent using a
  // reserved negative-tag block; these are not part of the user API.
  void internal_send_for_subcomm(int dest, int tag, std::span<const std::byte> payload);
  std::vector<std::byte> internal_recv_for_subcomm(int source, int tag);
  // Sequence number of the next split() on this communicator; identical on
  // every rank because split is collective and ordered.
  int next_split_id() { return split_count_++; }

 private:
  static constexpr int kTagBarrierArrive = -2;
  static constexpr int kTagBarrierRelease = -3;
  static constexpr int kTagBcast = -4;
  static constexpr int kTagScatter = -5;
  static constexpr int kTagGather = -6;
  static constexpr int kTagReduce = -7;
  static constexpr int kTagAlltoall = -8;
  static constexpr int kTagFtScatter = -9;
  static constexpr int kTagFtAck = -10;

  template <typename T>
  static std::span<const std::byte> as_bytes(std::span<const T> items) {
    return {reinterpret_cast<const std::byte*>(items.data()), items.size_bytes()};
  }
  template <typename T>
  static std::vector<T> from_bytes(const std::vector<std::byte>& payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_alignment(payload.size(), sizeof(T));
    std::vector<T> items(payload.size() / sizeof(T));
    if (!items.empty()) std::memcpy(items.data(), payload.data(), payload.size());
    return items;
  }

  static void check_single(std::size_t count);
  static void check_same_length(std::size_t got, std::size_t expected);
  static void check_alignment(std::size_t bytes, std::size_t item_size);
  void check_counts(std::size_t count_width) const;
  static void check_range(long long offset, std::size_t count, std::size_t total);

  // Like send_bytes but allows reserved (negative) tags. Collective
  // traffic is never droppable; delivery failures surface elsewhere.
  void internal_send(int dest, int tag, std::span<const std::byte> payload);
  // Full-control send: pays the (possibly fault-perturbed) link cost and
  // reports whether a copy was actually delivered (false when the fault
  // layer dropped it or the destination is dead).
  bool internal_send_impl(int dest, int tag, std::span<const std::byte> payload,
                          bool droppable);
  bool internal_send_with_retry(int dest, int tag,
                                std::span<const std::byte> payload,
                                const RetryPolicy& policy);
  Message internal_recv(int source, int tag);

  // Byte-level engines behind scatterv_ft.
  std::vector<std::byte> scatterv_ft_root(std::span<const std::byte> data,
                                          std::span<const long long> counts,
                                          std::size_t item_size,
                                          const ScattervFtOptions& options,
                                          FaultReport* report);
  std::vector<std::byte> scatterv_ft_worker(int root);

  int rank_;
  detail::RuntimeState& state_;
  int split_count_ = 0;
};

}  // namespace lbs::mq
