// Bridge between the planner's Platform and the mq runtime's link model.
//
// Ranks map 1:1 to platform positions (rank i = platform processor i, so
// the root is rank platform.size()-1, last — the paper's convention).
// Transfers to/from the root pay that processor's Tcomm for the
// transferred item count; transfers between two workers pay the slower of
// the two endpoints' root links (a conservative stand-in; the scatter/
// gather patterns this library targets never use worker-to-worker links).
#pragma once

#include <functional>

#include "model/platform.hpp"
#include "mq/fault.hpp"

namespace lbs::mq {

// Returns a RuntimeOptions::link_cost function. `item_size` converts byte
// counts back to item counts for the platform's per-item cost functions
// (partial items round up).
std::function<double(int, int, std::size_t)> make_link_cost(
    model::Platform platform, std::size_t item_size);

// The platform as a degradation-aware planner should see it at nominal
// time `nominal_time`: every worker's Tcomm is scaled by the plan's
// deterministic (jitter-free) root->worker delay factor at that instant.
// Compute costs are untouched — the fault model degrades links, not CPUs.
// Feed the result to core::plan_scatter (or core::make_ft_replanner) to
// plan against the grid as it currently misbehaves rather than as it was
// measured.
model::Platform degraded_platform(const model::Platform& platform,
                                  const FaultPlan& plan, double nominal_time);

}  // namespace lbs::mq
