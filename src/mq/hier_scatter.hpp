// Two-level (topology-aware) scatterv over mq.
//
// The flat MPI_Scatterv the paper transforms sends each rank's block over
// whatever link connects it to the root — on a two-site grid, one WAN
// message per remote rank. The MagPIe-style alternative sends each remote
// *site's* blocks as one aggregate to a site coordinator (one WAN message
// per site), which then re-scatters locally. Data layout and results are
// identical to flat scatterv; only the routing changes.
#pragma once

#include <vector>

#include "mq/subcomm.hpp"

namespace lbs::mq {

inline constexpr int kHierScatterTag = 1 << 21;

// Collective. `counts` are per parent rank (like scatterv); `site_of_rank`
// groups ranks into sites (site ids must lie in [0, comm.size())); each
// site's coordinator is its lowest rank (the root coordinates its own
// site). Returns this rank's block.
template <typename T>
std::vector<T> hierarchical_scatterv(Comm& comm, int root,
                                     std::span<const T> send_data,
                                     std::span<const long long> counts,
                                     const std::vector<int>& site_of_rank) {
  static_assert(std::is_trivially_copyable_v<T>);
  int size = comm.size();
  int me = comm.rank();
  int my_site = site_of_rank[static_cast<std::size_t>(me)];
  int root_site = site_of_rank[static_cast<std::size_t>(root)];

  auto coordinator_of = [&](int site) {
    if (site == root_site) return root;
    for (int r = 0; r < size; ++r) {
      if (site_of_rank[static_cast<std::size_t>(r)] == site) return r;
    }
    return -1;
  };
  int my_coordinator = coordinator_of(my_site);

  // Site-local communicator; coordinator is sub-rank 0 by key ordering.
  auto site_comm = split(comm, my_site, me == my_coordinator ? -1 : me);

  // Per-site aggregate counts and this site's per-member counts, ordered
  // by site_comm sub-rank.
  std::vector<long long> my_site_counts(static_cast<std::size_t>(site_comm.size()));
  for (int s = 0; s < site_comm.size(); ++s) {
    my_site_counts[static_cast<std::size_t>(s)] =
        counts[static_cast<std::size_t>(site_comm.parent_rank(s))];
  }

  // Phase 1 (WAN): the root ships each remote site its aggregate, built
  // by concatenating the site members' blocks in sub-rank order.
  std::vector<T> site_aggregate;
  if (me == root) {
    // Displacements of each rank's block in the flat send buffer.
    std::vector<long long> displs(static_cast<std::size_t>(size), 0);
    long long offset = 0;
    for (int r = 0; r < size; ++r) {
      displs[static_cast<std::size_t>(r)] = offset;
      offset += counts[static_cast<std::size_t>(r)];
    }

    for (int site = 0; site < size; ++site) {  // site ids are arbitrary ints
      bool exists = false;
      for (int r = 0; r < size; ++r) {
        exists = exists || site_of_rank[static_cast<std::size_t>(r)] == site;
      }
      if (!exists || site == root_site) continue;
      // Aggregate: members in coordinator-first order (matching the
      // site_comm ordering its members computed).
      std::vector<T> aggregate;
      int coordinator = coordinator_of(site);
      auto append_block = [&](int r) {
        auto count = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
        auto offset_r = static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]);
        aggregate.insert(aggregate.end(), send_data.begin() + offset_r,
                         send_data.begin() + offset_r + count);
      };
      append_block(coordinator);
      for (int r = 0; r < size; ++r) {
        if (r != coordinator && site_of_rank[static_cast<std::size_t>(r)] == site) {
          append_block(r);
        }
      }
      comm.send<T>(coordinator, kHierScatterTag, aggregate);
    }

    // Root's own site aggregate stays local.
    site_aggregate.clear();
    auto append_local = [&](int r) {
      auto count = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
      auto offset_r = static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]);
      site_aggregate.insert(site_aggregate.end(), send_data.begin() + offset_r,
                            send_data.begin() + offset_r + count);
    };
    append_local(root);
    for (int r = 0; r < size; ++r) {
      if (r != root && site_of_rank[static_cast<std::size_t>(r)] == root_site) {
        append_local(r);
      }
    }
  } else if (me == my_coordinator) {
    site_aggregate = comm.recv<T>(root, kHierScatterTag);
  }

  // Phase 2 (LAN): each coordinator scatters the aggregate within its site.
  return site_comm.template scatterv<T>(0, site_aggregate, my_site_counts);
}

}  // namespace lbs::mq
