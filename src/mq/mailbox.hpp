// Thread-safe mailboxes with (source, tag) matching.
//
// The delivery substrate of the mq runtime: each rank owns one Mailbox;
// send() deposits into the destination's box, recv() blocks until a
// matching message is available. Matching supports MPI-style wildcards.
// Messages from the same (source, tag) are delivered in deposit order
// (non-overtaking, like MPI).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace lbs::mq {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  // Deposits a message and wakes matching waiters. Returns false (and
  // discards the message) once the mailbox is shut down or crashed — a
  // dead rank's mail vanishes, it does not queue up.
  bool deposit(Message message);

  // Blocks until a message matching (source, tag) arrives (wildcards
  // kAnySource / kAnyTag allowed), removes and returns it. Throws
  // lbs::Error if the mailbox is shut down, or RankCrashed if it is
  // crashed, while (or before) waiting.
  Message retrieve(int source, int tag);

  // Deadline-aware retrieve: waits at most `timeout_seconds` of real time
  // for a match; returns std::nullopt on expiry. Throws like retrieve()
  // when the mailbox is shut down or crashed.
  std::optional<Message> retrieve_for(int source, int tag,
                                      double timeout_seconds);

  // Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag);

  // Wakes all waiters with an error; further retrieves throw too. Used to
  // unblock ranks when a peer dies so the whole runtime can fail cleanly.
  void shutdown();

  // Like shutdown(), but waiters (and later retrieves) see RankCrashed —
  // the owning rank was killed by fault injection, not a program failure.
  void crash();

  [[nodiscard]] std::size_t pending();

 private:
  [[nodiscard]] bool matches(const Message& message, int source, int tag) const;
  // Requires the lock; throws if the mailbox is shut down or crashed.
  void throw_if_dead() const;
  // Requires the lock; removes and returns a match if one is queued.
  std::optional<Message> take_match(int source, int tag);

  std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Message> messages_;
  bool shutdown_ = false;
  bool crashed_ = false;
};

}  // namespace lbs::mq
