// Thread-safe mailboxes with (source, tag) matching.
//
// The delivery substrate of the mq runtime: each rank owns one Mailbox;
// send() deposits into the destination's box, recv() blocks until a
// matching message is available. Matching supports MPI-style wildcards.
// Messages from the same (source, tag) are delivered in deposit order
// (non-overtaking, like MPI).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace lbs::mq {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  // Deposits a message and wakes matching waiters.
  void deposit(Message message);

  // Blocks until a message matching (source, tag) arrives (wildcards
  // kAnySource / kAnyTag allowed), removes and returns it. Throws
  // lbs::Error if the mailbox is shut down while (or before) waiting.
  Message retrieve(int source, int tag);

  // Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag);

  // Wakes all waiters with an error; further retrieves throw too. Used to
  // unblock ranks when a peer dies so the whole runtime can fail cleanly.
  void shutdown();

  [[nodiscard]] std::size_t pending() ;

 private:
  [[nodiscard]] bool matches(const Message& message, int source, int tag) const;

  std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Message> messages_;
  bool shutdown_ = false;
};

}  // namespace lbs::mq
