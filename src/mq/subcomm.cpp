#include "mq/subcomm.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::mq {

namespace {

// Tag blocks for sub-communicator traffic live far below the collective
// tags of Comm itself; each split (identified by its sequence number,
// which is identical on every rank because split is collective) gets its
// own block.
constexpr int kSubTagFloor = -100000;

}  // namespace

SubComm::SubComm(Comm& parent, std::vector<int> members, int my_index, int tag_base)
    : parent_(&parent),
      members_(std::move(members)),
      my_index_(my_index),
      tag_base_(tag_base) {}

int SubComm::parent_rank(int sub_rank) const {
  LBS_CHECK(sub_rank >= 0 && sub_rank < size());
  return members_[static_cast<std::size_t>(sub_rank)];
}

void SubComm::send_to(int sub_rank, int op, std::span<const std::byte> payload) {
  parent_->internal_send_for_subcomm(parent_rank(sub_rank), op_tag(op), payload);
}

std::vector<std::byte> SubComm::recv_from(int sub_rank, int op) {
  return parent_->internal_recv_for_subcomm(parent_rank(sub_rank), op_tag(op));
}

void SubComm::barrier() {
  const std::byte token{1};
  std::span<const std::byte> payload(&token, 1);
  if (my_index_ == 0) {
    for (int r = 1; r < size(); ++r) recv_from(r, kOpBarrierArrive);
    for (int r = 1; r < size(); ++r) send_to(r, kOpBarrierRelease, payload);
  } else {
    send_to(0, kOpBarrierArrive, payload);
    recv_from(0, kOpBarrierRelease);
  }
}

std::optional<SubComm> split_optional(Comm& comm, int color, int key) {
  LBS_CHECK_MSG(color >= 0 || color == kNoColor, "invalid split color");

  // Exchange (color, key) triples through an allgather; every rank then
  // derives the same membership deterministically.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  std::vector<int> mine{color, key};
  auto flat = comm.allgather<int>(mine);
  LBS_CHECK(flat.size() == static_cast<std::size_t>(comm.size()) * 2);

  int split_id = comm.next_split_id();
  int tag_base = kSubTagFloor - split_id * SubComm::kOpsPerSplit;

  if (color == kNoColor) return std::nullopt;

  std::vector<Entry> group;
  for (int r = 0; r < comm.size(); ++r) {
    int r_color = flat[static_cast<std::size_t>(r) * 2];
    int r_key = flat[static_cast<std::size_t>(r) * 2 + 1];
    if (r_color == color) group.push_back(Entry{r_color, r_key, r});
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> members;
  int my_index = -1;
  for (const auto& entry : group) {
    if (entry.rank == comm.rank()) my_index = static_cast<int>(members.size());
    members.push_back(entry.rank);
  }
  LBS_CHECK(my_index >= 0);
  return SubComm(comm, std::move(members), my_index, tag_base);
}

SubComm split(Comm& comm, int color, int key) {
  auto sub = split_optional(comm, color, key);
  LBS_CHECK_MSG(sub.has_value(), "split() requires a color; use split_optional");
  return std::move(*sub);
}

}  // namespace lbs::mq
