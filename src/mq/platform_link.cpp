#include "mq/platform_link.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::mq {

std::function<double(int, int, std::size_t)> make_link_cost(
    model::Platform platform, std::size_t item_size) {
  LBS_CHECK_MSG(item_size > 0, "zero item size");
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  int root = platform.size() - 1;

  return [platform = std::move(platform), item_size, root](
             int from, int to, std::size_t bytes) -> double {
    auto items = static_cast<long long>((bytes + item_size - 1) / item_size);
    if (from == root) return platform[to].comm(items);
    if (to == root) return platform[from].comm(items);
    return std::max(platform[from].comm(items), platform[to].comm(items));
  };
}

model::Platform degraded_platform(const model::Platform& platform,
                                  const FaultPlan& plan, double nominal_time) {
  LBS_CHECK_MSG(platform.size() >= 1, "empty platform");
  FaultInjector injector(plan, platform.size());
  int root = platform.size() - 1;

  model::Platform degraded = platform;
  for (int i = 0; i < root; ++i) {
    double factor = injector.delay_factor(root, i, nominal_time);
    if (factor != 1.0) {
      auto& processor = degraded.processors[static_cast<std::size_t>(i)];
      processor.comm = model::Cost::scaled(processor.comm, factor);
    }
  }
  return degraded;
}

}  // namespace lbs::mq
