// Deterministic fault injection for the mq runtime.
//
// A FaultPlan describes how the emulated grid misbehaves: per-link delay
// multipliers with jitter, probabilistic message drops, links that degrade
// over (nominal) time, and ranks that crash at a nominal instant. The plan
// is pure data — the same plan can be threaded through RuntimeOptions
// (real threads, real sleeps) or replayed in gridsim (virtual time) at
// scales the threaded runtime can't reach.
//
// Determinism: every per-message random decision (jitter, drop) is drawn
// from an Rng seeded by hash(seed, from, to, link-sequence-number), so a
// link's k-th message always sees the same perturbation regardless of
// thread scheduling. Crashes are anchored to the nominal clock
// (wall-time / time_scale in mq, virtual time in gridsim).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace lbs::mq {

// Wildcard for LinkFault endpoints ("any rank").
inline constexpr int kAnyRank = -1;

// Backoff schedule for droppable sends that are retried (send_bytes_with_
// retry, scatterv_ft data chunks). Backoff is in nominal seconds: attempt
// k waits backoff * multiplier^k before resending.
struct RetryPolicy {
  int max_attempts = 8;       // total attempts (>= 1)
  double backoff = 0.005;     // nominal seconds before the first retry
  double multiplier = 2.0;    // exponential growth factor (>= 1)
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // Perturbation of messages on matching links. `from`/`to` may be
  // kAnyRank. Active while the nominal clock is in [from_time, to_time).
  struct LinkFault {
    int from = kAnyRank;
    int to = kAnyRank;
    double delay_factor = 1.0;      // multiplies the nominal link cost (> 0)
    double jitter = 0.0;            // +- fraction, uniform, in [0, 1)
    double drop_probability = 0.0;  // droppable messages only, in [0, 1]
    // Linear degradation: the delay factor grows by `degradation_rate` per
    // nominal second elapsed since from_time (a link getting slower under
    // rising background load).
    double degradation_rate = 0.0;
    double from_time = 0.0;
    double to_time = std::numeric_limits<double>::infinity();
  };
  std::vector<LinkFault> link_faults;

  // Rank `rank` dies at nominal time `at_nominal_time`: its mailbox stops
  // delivering, deposits to it vanish, and its next runtime call throws
  // RankCrashed. at_nominal_time <= 0 means dead from the start (works
  // even with time_scale == 0); positive times require time_scale > 0.
  struct Crash {
    int rank = 0;
    double at_nominal_time = 0.0;
  };
  std::vector<Crash> crashes;

  [[nodiscard]] bool empty() const {
    return link_faults.empty() && crashes.empty();
  }
};

// Thrown inside a rank whose injected crash time has passed. Runtime::run
// treats it as an injected death (the rank's thread ends, survivors keep
// running), not as a program failure.
class RankCrashed : public Error {
 public:
  explicit RankCrashed(const std::string& what) : Error(what) {}
};

// What a fault-tolerant collective observed and did; filled at the root.
struct FaultReport {
  struct Death {
    int rank = -1;
    double detected_at = 0.0;    // root-side clock (real s in mq, virtual in gridsim)
    long long undelivered = 0;   // items re-pooled when the death was detected
  };
  std::vector<Death> deaths;            // in detection order
  std::vector<long long> delivered;     // items per rank at completion (0 for dead)
  long long rerouted_items = 0;         // items re-planned onto survivors
  int replan_rounds = 0;
  double elapsed = 0.0;                 // root-side duration of the collective

  [[nodiscard]] long long total_delivered() const;
};

// Options for Comm::scatterv_ft (and the gridsim mirror).
struct ScattervFtOptions {
  // Real seconds the root waits for a receiver's ack before declaring it
  // dead. Must cover the ack's own emulated transfer time.
  double ack_timeout = 1.0;

  RetryPolicy retry;  // for the droppable data chunks

  // Re-plans `items` undelivered items over the survivors. `alive` lists
  // surviving rank ids with the root last; the returned counts align with
  // `alive` and must sum to `items`. Default: near-uniform shares.
  // core::make_ft_replanner() builds one that re-runs plan_scatter on the
  // reduced platform.
  std::function<std::vector<long long>(const std::vector<int>& alive,
                                       long long items)> replan;
};

// Applies a FaultPlan: owns the per-link message counters and the
// deterministic per-message randomness. Shared by the mq runtime and the
// gridsim replay so both substrates make identical drop/jitter decisions.
class FaultInjector {
 public:
  // Validates the plan (factors > 0, probabilities in range, ranks in
  // [0, ranks) or kAnyRank); throws lbs::Error on violations.
  FaultInjector(FaultPlan plan, int ranks);

  struct Perturbation {
    double delay_factor = 1.0;
    bool dropped = false;
  };

  // Decision for the next message on (from, to) at nominal time `now`.
  // Advances the link's sequence counter (thread-safe, deterministic per
  // link order).
  Perturbation perturb_send(int from, int to, double now, bool droppable);

  // Deterministic (jitter-free) delay factor on (from, to) at `now` — what
  // a degradation-aware planner should plan against.
  [[nodiscard]] double delay_factor(int from, int to, double now) const;

  // Nominal crash time of `rank`, +infinity if it never crashes.
  [[nodiscard]] double crash_time(int rank) const;

  [[nodiscard]] bool has_timed_crashes() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] int ranks() const { return ranks_; }

 private:
  FaultPlan plan_;
  int ranks_ = 0;
  std::vector<double> crash_at_;                      // per rank, +inf = never
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_seq_;  // ranks * ranks
};

}  // namespace lbs::mq
