#include "mq/mailbox.hpp"

#include <algorithm>
#include <chrono>

#include "mq/fault.hpp"
#include "support/error.hpp"

namespace lbs::mq {

bool Mailbox::deposit(Message message) {
  {
    std::lock_guard lock(mutex_);
    if (shutdown_ || crashed_) return false;
    messages_.push_back(std::move(message));
  }
  available_.notify_all();
  return true;
}

bool Mailbox::matches(const Message& message, int source, int tag) const {
  return (source == kAnySource || message.source == source) &&
         (tag == kAnyTag || message.tag == tag);
}

void Mailbox::throw_if_dead() const {
  if (crashed_) throw RankCrashed("rank crashed (injected fault)");
  if (shutdown_) throw Error("mailbox shut down while receiving");
}

std::optional<Message> Mailbox::take_match(int source, int tag) {
  auto it = std::find_if(messages_.begin(), messages_.end(),
                         [&](const Message& m) { return matches(m, source, tag); });
  if (it == messages_.end()) return std::nullopt;
  Message message = std::move(*it);
  messages_.erase(it);
  return message;
}

Message Mailbox::retrieve(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    throw_if_dead();
    if (auto message = take_match(source, tag)) return std::move(*message);
    available_.wait(lock);
  }
}

std::optional<Message> Mailbox::retrieve_for(int source, int tag,
                                             double timeout_seconds) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(std::max(0.0, timeout_seconds)));
  std::unique_lock lock(mutex_);
  for (;;) {
    throw_if_dead();
    if (auto message = take_match(source, tag)) return message;
    if (available_.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw_if_dead();
      return take_match(source, tag);
    }
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard lock(mutex_);
  return std::any_of(messages_.begin(), messages_.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

void Mailbox::shutdown() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  available_.notify_all();
}

void Mailbox::crash() {
  {
    std::lock_guard lock(mutex_);
    crashed_ = true;
  }
  available_.notify_all();
}

std::size_t Mailbox::pending() {
  std::lock_guard lock(mutex_);
  return messages_.size();
}

}  // namespace lbs::mq
