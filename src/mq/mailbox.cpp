#include "mq/mailbox.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::mq {

void Mailbox::deposit(Message message) {
  {
    std::lock_guard lock(mutex_);
    messages_.push_back(std::move(message));
  }
  available_.notify_all();
}

bool Mailbox::matches(const Message& message, int source, int tag) const {
  return (source == kAnySource || message.source == source) &&
         (tag == kAnyTag || message.tag == tag);
}

Message Mailbox::retrieve(int source, int tag) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (shutdown_) throw Error("mailbox shut down while receiving");
    auto it = std::find_if(messages_.begin(), messages_.end(),
                           [&](const Message& m) { return matches(m, source, tag); });
    if (it != messages_.end()) {
      Message message = std::move(*it);
      messages_.erase(it);
      return message;
    }
    available_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard lock(mutex_);
  return std::any_of(messages_.begin(), messages_.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

void Mailbox::shutdown() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  available_.notify_all();
}

std::size_t Mailbox::pending() {
  std::lock_guard lock(mutex_);
  return messages_.size();
}

}  // namespace lbs::mq
