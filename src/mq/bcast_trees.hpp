// Broadcast algorithms over mq: flat, binomial, and hierarchical.
//
// Paper, Section 1: "MPICH-G2 performs often better than MPICH to
// disseminate information held by a processor to several others. While
// MPICH always use a binomial tree to propagate data, MPICH-G2 is able to
// switch to a flat tree broadcast when network latency is high", and
// MagPIe restructures collectives for clustered wide-area systems. These
// functions implement the three shapes over mq point-to-point so the
// claim can be measured under emulated pacing (bench_bcast_trees):
//
//  - flat: the root sends to every rank in turn (Comm::bcast's default).
//    Serializes on the root's port; latency is paid once per rank but
//    never stacked along a path.
//  - binomial: log2(p) rounds; rank r receives from r - 2^k and forwards
//    to r + 2^j. Optimal message count, but on a high-latency WAN each
//    tree level pays the latency again *and* interior nodes re-send big
//    payloads over slow links.
//  - hierarchical (MagPIe-style): one WAN transfer per site to a local
//    coordinator, then a flat LAN broadcast inside each site.
#pragma once

#include <algorithm>
#include <vector>

#include "mq/comm.hpp"

namespace lbs::mq {

// All ranks call with the same `root`; on non-root ranks `data` is
// replaced by the broadcast payload.
template <typename T>
void bcast_flat(Comm& comm, int root, std::vector<T>& data) {
  comm.bcast(root, data);  // Comm::bcast is the flat tree
}

// Binomial tree rooted at `root` (ranks virtually rotated so the tree
// works for any root). Uses a user-visible tag, so do not interleave with
// unrelated traffic on tag kBcastTreeTag.
inline constexpr int kBcastTreeTag = 1 << 20;

template <typename T>
void bcast_binomial(Comm& comm, int root, std::vector<T>& data) {
  int size = comm.size();
  int virtual_rank = (comm.rank() - root + size) % size;

  // Receive phase: the lowest set bit of my virtual rank tells me which
  // round I receive in; my parent cleared that bit.
  if (virtual_rank != 0) {
    int lowest_bit = virtual_rank & -virtual_rank;
    int parent = (virtual_rank - lowest_bit + root) % size;
    data = comm.recv<T>(parent, kBcastTreeTag);
  }
  // Forward phase: send to children virtual_rank + 2^k for growing k,
  // up to (exclusive) my own lowest set bit; the root forwards on every
  // power of two.
  for (int bit = 1; ; bit <<= 1) {
    if (virtual_rank != 0 && bit >= (virtual_rank & -virtual_rank)) break;
    int child_virtual = virtual_rank + bit;
    if (child_virtual >= size) break;
    int child = (child_virtual + root) % size;
    comm.send<T>(child, kBcastTreeTag, data);
  }
}

// Site assignment for the hierarchical broadcast: site[r] for each rank.
// Within each site the lowest-ranked member is the coordinator; the root
// serves its own site directly.
template <typename T>
void bcast_hierarchical(Comm& comm, int root, std::vector<T>& data,
                        const std::vector<int>& site_of_rank) {
  int size = comm.size();
  int me = comm.rank();
  int my_site = site_of_rank[static_cast<std::size_t>(me)];
  int root_site = site_of_rank[static_cast<std::size_t>(root)];

  // Coordinator of a site: its lowest rank (the root coordinates its own
  // site regardless of rank order).
  auto coordinator_of = [&](int site) {
    if (site == root_site) return root;
    for (int r = 0; r < size; ++r) {
      if (site_of_rank[static_cast<std::size_t>(r)] == site) return r;
    }
    return -1;
  };
  int my_coordinator = coordinator_of(my_site);

  if (me == root) {
    // WAN phase: one transfer per remote site.
    std::vector<int> served;
    for (int r = 0; r < size; ++r) {
      int site = site_of_rank[static_cast<std::size_t>(r)];
      if (site == root_site) continue;
      int coordinator = coordinator_of(site);
      if (coordinator == r &&
          std::find(served.begin(), served.end(), site) == served.end()) {
        comm.send<T>(coordinator, kBcastTreeTag, data);
        served.push_back(site);
      }
    }
  } else if (me == my_coordinator) {
    data = comm.recv<T>(root, kBcastTreeTag);
  }

  // LAN phase: each coordinator flat-broadcasts within its site.
  if (me == my_coordinator) {
    for (int r = 0; r < size; ++r) {
      if (r != me && site_of_rank[static_cast<std::size_t>(r)] == my_site) {
        comm.send<T>(r, kBcastTreeTag + 1, data);
      }
    }
  } else {
    data = comm.recv<T>(my_coordinator, kBcastTreeTag + 1);
  }
}

}  // namespace lbs::mq
