#include "mq/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <thread>

#include "mq/runtime_state.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace lbs::mq {

namespace {

// Framing for fault-tolerant scatter messages: an 8-byte kind header, then
// the chunk body. One reserved tag carries all three kinds so the worker
// can block on a single (source, tag) match.
constexpr std::int64_t kFtData = 0;   // body = items; must be acknowledged
constexpr std::int64_t kFtDone = 1;   // scatter over, return what you have
constexpr std::int64_t kFtEvict = 2;  // presumed dead: discard everything

std::vector<std::byte> frame(std::int64_t kind, std::span<const std::byte> body) {
  std::vector<std::byte> message(sizeof(kind) + body.size());
  std::memcpy(message.data(), &kind, sizeof(kind));
  if (!body.empty()) {
    std::memcpy(message.data() + sizeof(kind), body.data(), body.size());
  }
  return message;
}

std::int64_t frame_kind(const std::vector<std::byte>& payload) {
  LBS_CHECK_MSG(payload.size() >= sizeof(std::int64_t),
                "corrupt fault-tolerant scatter frame");
  std::int64_t kind = 0;
  std::memcpy(&kind, payload.data(), sizeof(kind));
  return kind;
}

// A contiguous range of items of the root's send buffer.
struct Segment {
  long long offset = 0;
  long long count = 0;
};

// Near-uniform fallback replanner: floor(items/n) each, first ranks take
// the remainder (same convention as core::uniform_distribution).
std::vector<long long> uniform_replan(std::size_t parts, long long items) {
  std::vector<long long> counts(parts, items / static_cast<long long>(parts));
  auto extra = static_cast<std::size_t>(items % static_cast<long long>(parts));
  for (std::size_t i = 0; i < extra; ++i) ++counts[i];
  return counts;
}

}  // namespace

Comm::Comm(int rank, detail::RuntimeState& state) : rank_(rank), state_(state) {}

int Comm::size() const {
  return state_.options.ranks;
}

double Comm::wtime() const {
  auto elapsed = std::chrono::steady_clock::now() - state_.start;
  return std::chrono::duration<double>(elapsed).count();
}

double Comm::time_scale() const {
  return state_.options.time_scale;
}

obs::Tracer* Comm::tracer() const {
  return state_.tracer;
}

bool Comm::rank_dead(int rank) const {
  LBS_CHECK_MSG(rank >= 0 && rank < size(), "failure query for unknown rank");
  return state_.is_dead(rank);
}

void Comm::check_failures() const {
  if (!state_.faults) return;
  if (state_.is_dead(rank_) ||
      state_.nominal_now() >= state_.faults->crash_time(rank_)) {
    state_.kill_rank(rank_);
    throw RankCrashed("rank crashed (injected fault)");
  }
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  LBS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  internal_send_impl(dest, tag, payload, /*droppable=*/true);
}

Message Comm::recv_message(int source, int tag) {
  LBS_CHECK_MSG(tag >= 0 || tag == kAnyTag,
                "negative tags are reserved for collectives");
  return internal_recv(source, tag);
}

std::optional<Message> Comm::recv_message(int source, int tag,
                                          double timeout_seconds) {
  LBS_CHECK_MSG(tag >= 0 || tag == kAnyTag,
                "negative tags are reserved for collectives");
  LBS_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                "receive from unknown rank");
  LBS_CHECK_MSG(timeout_seconds >= 0.0, "negative receive timeout");
  check_failures();
  const double begin = obs::wall_now();
  auto message = state_.mailboxes[static_cast<std::size_t>(rank_)]->retrieve_for(
      source, tag, timeout_seconds);
  const double waited = obs::wall_now() - begin;
  state_.recv_wait_ns[static_cast<std::size_t>(rank_)].fetch_add(
      detail::RuntimeState::to_ns(waited), std::memory_order_relaxed);
  if (message.has_value()) {
    if (obs::Tracer* tracer = state_.tracer) {
      obs::TraceEvent event;
      event.type = obs::EventType::CommRecv;
      event.rank = rank_;
      event.peer = message->source;
      event.start = begin;
      event.duration = waited;
      event.arg0 = static_cast<long long>(message->payload.size());
      tracer->record(event);
    }
  }
  return message;
}

bool Comm::send_bytes_with_retry(int dest, int tag,
                                 std::span<const std::byte> payload,
                                 const RetryPolicy& policy) {
  LBS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  return internal_send_with_retry(dest, tag, payload, policy);
}

bool Comm::internal_send_with_retry(int dest, int tag,
                                    std::span<const std::byte> payload,
                                    const RetryPolicy& policy) {
  LBS_CHECK_MSG(policy.max_attempts >= 1, "retry policy needs >= 1 attempt");
  LBS_CHECK_MSG(policy.backoff >= 0.0 && policy.multiplier >= 1.0,
                "invalid retry backoff");
  double backoff = policy.backoff;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      double real = backoff * state_.options.time_scale;
      if (real > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(real));
      }
      backoff *= policy.multiplier;
      check_failures();
    }
    if (internal_send_impl(dest, tag, payload, /*droppable=*/true)) return true;
    if (state_.is_dead(dest)) return false;  // retries cannot resurrect it
  }
  return false;
}

void Comm::internal_send(int dest, int tag, std::span<const std::byte> payload) {
  internal_send_impl(dest, tag, payload, /*droppable=*/false);
}

bool Comm::internal_send_impl(int dest, int tag,
                              std::span<const std::byte> payload,
                              bool droppable) {
  LBS_CHECK_MSG(dest >= 0 && dest < size(), "send to unknown rank");
  LBS_CHECK_MSG(dest != rank_, "send to self (collectives keep local data local)");
  if (state_.aborted.load(std::memory_order_relaxed)) {
    throw Error("runtime aborted");
  }
  check_failures();

  // Fault-layer decision for this message: a deterministic delay factor
  // (degradation + jitter) and, for droppable traffic, whether the message
  // vanishes in flight. A dropped message still occupies the NIC — the
  // bytes went out before they were lost.
  FaultInjector::Perturbation perturbation;
  if (state_.faults) {
    perturbation =
        state_.faults->perturb_send(rank_, dest, state_.nominal_now(), droppable);
  }

  // Emulated transfer: the sender's NIC is occupied for the whole
  // transfer (the single-port model — a root scattering to many ranks
  // serializes here, whether the sends are blocking or isend workers).
  // The comm.send span is recorded while the NIC lock is held, so spans
  // from one rank cannot overlap by construction — the invariant the
  // trace oracle (tests/trace_check.hpp) checks at the root.
  obs::Tracer* tracer = state_.tracer;
  bool paced = false;
  if (state_.options.link_cost && state_.options.time_scale > 0.0) {
    double nominal = state_.options.link_cost(rank_, dest, payload.size());
    LBS_CHECK_MSG(nominal >= 0.0, "negative link cost");
    double real = nominal * perturbation.delay_factor * state_.options.time_scale;
    if (real > 0.0) {
      paced = true;
      std::lock_guard nic_lock(*state_.nic[static_cast<std::size_t>(rank_)]);
      const double begin = obs::wall_now();
      std::this_thread::sleep_for(std::chrono::duration<double>(real));
      const double held = obs::wall_now() - begin;
      state_.nic_busy_ns[static_cast<std::size_t>(rank_)].fetch_add(
          detail::RuntimeState::to_ns(held), std::memory_order_relaxed);
      if (tracer != nullptr) {
        obs::TraceEvent event;
        event.type = obs::EventType::CommSend;
        event.rank = rank_;
        event.peer = dest;
        event.start = begin;
        event.duration = held;
        event.arg0 = static_cast<long long>(payload.size());
        event.arg1 = perturbation.dropped ? 1 : 0;
        tracer->record(event);
      }
    }
  }
  if (!paced && tracer != nullptr) {
    // No pacing (or a zero-cost transfer): the port is never occupied, so
    // the send shows up as an instant rather than a degenerate span.
    obs::TraceEvent event;
    event.type = obs::EventType::CommSend;
    event.instant = true;
    event.rank = rank_;
    event.peer = dest;
    event.start = obs::wall_now();
    event.arg0 = static_cast<long long>(payload.size());
    event.arg1 = perturbation.dropped ? 1 : 0;
    tracer->record(event);
  }
  state_.add_link_bytes(rank_, dest, payload.size());
  check_failures();

  if (perturbation.dropped) return false;

  Message message;
  message.source = rank_;
  message.tag = tag;
  message.payload.assign(payload.begin(), payload.end());
  return state_.mailboxes[static_cast<std::size_t>(dest)]->deposit(
      std::move(message));
}

Message Comm::internal_recv(int source, int tag) {
  LBS_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                "receive from unknown rank");
  check_failures();
  const double begin = obs::wall_now();
  Message message =
      state_.mailboxes[static_cast<std::size_t>(rank_)]->retrieve(source, tag);
  const double waited = obs::wall_now() - begin;
  state_.recv_wait_ns[static_cast<std::size_t>(rank_)].fetch_add(
      detail::RuntimeState::to_ns(waited), std::memory_order_relaxed);
  if (obs::Tracer* tracer = state_.tracer) {
    obs::TraceEvent event;
    event.type = obs::EventType::CommRecv;
    event.rank = rank_;
    event.peer = message.source;
    event.start = begin;
    event.duration = waited;
    event.arg0 = static_cast<long long>(message.payload.size());
    tracer->record(event);
  }
  return message;
}

std::vector<std::byte> Comm::scatterv_ft_root(std::span<const std::byte> data,
                                              std::span<const long long> counts,
                                              std::size_t item_size,
                                              const ScattervFtOptions& options,
                                              FaultReport* report) {
  LBS_CHECK_MSG(item_size > 0, "zero item size");
  LBS_CHECK_MSG(options.ack_timeout > 0.0, "ack timeout must be positive");
  const int p = size();
  const double start_time = wtime();

  FaultReport local;
  local.delivered.assign(static_cast<std::size_t>(p), 0);

  std::vector<char> dead(static_cast<std::size_t>(p), 0);
  // Everything a rank has been assigned (acknowledged or in flight); on
  // eviction the whole list is re-pooled, which is what makes delivery
  // exactly-once: an evicted survivor discards, a crashed rank returns
  // nothing, and the items resurface on the survivors.
  std::vector<std::vector<Segment>> assigned(static_cast<std::size_t>(p));
  std::deque<std::pair<int, Segment>> queue;  // chunks awaiting transmission
  std::vector<Segment> pool;                  // items needing a new home
  std::vector<std::byte> own;

  auto slice = [&](const Segment& segment) {
    auto offset = static_cast<std::size_t>(segment.offset) * item_size;
    auto length = static_cast<std::size_t>(segment.count) * item_size;
    check_range(segment.offset, static_cast<std::size_t>(segment.count),
                data.size() / item_size);
    return data.subspan(offset, length);
  };

  auto keep_own = [&](const Segment& segment) {
    auto bytes = slice(segment);
    own.insert(own.end(), bytes.begin(), bytes.end());
    local.delivered[static_cast<std::size_t>(rank_)] += segment.count;
  };

  auto mark_dead = [&](int rank) {
    dead[static_cast<std::size_t>(rank)] = 1;
    long long undelivered = 0;
    for (const auto& segment : assigned[static_cast<std::size_t>(rank)]) {
      pool.push_back(segment);
      undelivered += segment.count;
    }
    assigned[static_cast<std::size_t>(rank)].clear();
    local.delivered[static_cast<std::size_t>(rank)] = 0;
    local.deaths.push_back({rank, wtime() - start_time, undelivered});
    if (obs::Tracer* tracer = state_.tracer) {
      obs::TraceEvent event;
      event.type = obs::EventType::RankDeath;
      event.instant = true;
      event.rank = rank;
      event.peer = rank_;
      event.start = obs::wall_now();
      event.arg0 = undelivered;
      tracer->record(event);
    }
  };

  // Initial assignment: rank order, contiguous, as scatterv lays data out.
  long long offset = 0;
  for (int r = 0; r < p; ++r) {
    Segment segment{offset, counts[static_cast<std::size_t>(r)]};
    offset += segment.count;
    if (r == rank_) {
      keep_own(segment);
    } else if (segment.count > 0) {
      queue.push_back({r, segment});
    }
  }

  auto replan_pool = [&] {
    std::vector<int> alive;
    for (int r = 0; r < p; ++r) {
      if (r != rank_ && !dead[static_cast<std::size_t>(r)]) alive.push_back(r);
    }
    if (alive.empty()) {
      throw Error("scatterv_ft: all workers dead, cannot re-route remainder");
    }
    alive.push_back(rank_);  // root last, the paper's convention

    long long remaining = 0;
    for (const auto& segment : pool) remaining += segment.count;
    auto new_counts = options.replan
                          ? options.replan(alive, remaining)
                          : uniform_replan(alive.size(), remaining);
    LBS_CHECK_MSG(new_counts.size() == alive.size(),
                  "replanner returned wrong number of counts");
    long long planned = 0;
    for (long long count : new_counts) {
      LBS_CHECK_MSG(count >= 0, "replanner returned negative count");
      planned += count;
    }
    LBS_CHECK_MSG(planned == remaining,
                  "replanner counts do not sum to the remainder");

    // Carve the pooled segments into the new shares, in order.
    std::deque<Segment> remainder(pool.begin(), pool.end());
    pool.clear();
    for (std::size_t i = 0; i < alive.size(); ++i) {
      long long need = new_counts[i];
      while (need > 0) {
        Segment& head = remainder.front();
        Segment piece{head.offset, std::min(need, head.count)};
        head.offset += piece.count;
        head.count -= piece.count;
        if (head.count == 0) remainder.pop_front();
        need -= piece.count;
        if (alive[i] == rank_) {
          keep_own(piece);
        } else {
          queue.push_back({alive[i], piece});
        }
      }
    }
    local.rerouted_items += remaining;
    ++local.replan_rounds;
    if (obs::Tracer* tracer = state_.tracer) {
      obs::TraceEvent event;
      event.type = obs::EventType::RecoveryReplan;
      event.instant = true;
      event.rank = rank_;
      event.start = obs::wall_now();
      event.arg0 = remaining;
      event.arg1 = local.replan_rounds;
      tracer->record(event);
    }
  };

  for (;;) {
    while (!queue.empty()) {
      auto [r, segment] = queue.front();
      queue.pop_front();
      if (dead[static_cast<std::size_t>(r)]) {
        // Died earlier in this drain; its queued chunks go back to the pool.
        pool.push_back(segment);
        continue;
      }
      assigned[static_cast<std::size_t>(r)].push_back(segment);
      if (rank_dead(r)) {
        mark_dead(r);
        continue;
      }
      auto message = frame(kFtData, slice(segment));
      bool sent =
          internal_send_with_retry(r, kTagFtScatter, message, options.retry);
      bool acked = false;
      if (sent) {
        acked = state_.mailboxes[static_cast<std::size_t>(rank_)]
                    ->retrieve_for(r, kTagFtAck, options.ack_timeout)
                    .has_value();
      }
      if (acked) {
        local.delivered[static_cast<std::size_t>(r)] += segment.count;
      } else {
        // Timed out, undeliverable, or flagged dead: evict. If the rank is
        // merely slow (not crashed), tell it to discard so the re-routed
        // copies stay the only ones.
        bool maybe_alive = !rank_dead(r);
        mark_dead(r);
        if (maybe_alive) {
          internal_send_impl(r, kTagFtScatter, frame(kFtEvict, {}),
                             /*droppable=*/false);
        }
      }
    }
    if (!pool.empty()) {
      replan_pool();
      continue;
    }
    // Final sweep: catch ranks that crashed after their last ack (their
    // items must be re-routed before we declare the scatter complete).
    bool found_late_death = false;
    for (int r = 0; r < p; ++r) {
      if (r != rank_ && !dead[static_cast<std::size_t>(r)] && rank_dead(r)) {
        mark_dead(r);
        found_late_death = true;
      }
    }
    if (!found_late_death) break;
    if (!pool.empty()) replan_pool();
  }

  for (int r = 0; r < p; ++r) {
    if (r != rank_ && !dead[static_cast<std::size_t>(r)]) {
      internal_send_impl(r, kTagFtScatter, frame(kFtDone, {}),
                         /*droppable=*/false);
    }
  }

  local.elapsed = wtime() - start_time;
  if (report) *report = std::move(local);
  return own;
}

std::vector<std::byte> Comm::scatterv_ft_worker(int root) {
  LBS_CHECK_MSG(root >= 0 && root < size() && root != rank_,
                "fault-tolerant scatter from unknown root");
  std::vector<std::byte> received;
  for (;;) {
    Message message = internal_recv(root, kTagFtScatter);
    std::int64_t kind = frame_kind(message.payload);
    if (kind == kFtData) {
      received.insert(received.end(),
                      message.payload.begin() +
                          static_cast<std::ptrdiff_t>(sizeof(std::int64_t)),
                      message.payload.end());
      const std::byte ack{1};
      internal_send_impl(root, kTagFtAck, std::span<const std::byte>(&ack, 1),
                         /*droppable=*/false);
    } else if (kind == kFtDone) {
      break;
    } else if (kind == kFtEvict) {
      received.clear();
      break;
    } else {
      throw Error("corrupt fault-tolerant scatter frame kind");
    }
  }
  return received;
}

Request Comm::isend_bytes(int dest, int tag, std::vector<std::byte> payload) {
  LBS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  auto state = std::make_shared<Request::State>();
  Request::State* raw = state.get();
  state->worker = std::thread([this, dest, tag, payload = std::move(payload), raw] {
    std::exception_ptr failure;
    try {
      internal_send_impl(dest, tag, payload, /*droppable=*/true);
    } catch (...) {
      failure = std::current_exception();
    }
    {
      std::lock_guard lock(raw->mutex);
      raw->failure = failure;
      raw->done = true;
    }
    raw->done_cv.notify_all();
  });
  return Request(std::move(state));
}

Request Comm::irecv(int source, int tag) {
  LBS_CHECK_MSG(tag >= 0 || tag == kAnyTag,
                "negative tags are reserved for collectives");
  auto state = std::make_shared<Request::State>();
  Request::State* raw = state.get();
  state->worker = std::thread([this, source, tag, raw] {
    std::exception_ptr failure;
    std::vector<std::byte> payload;
    try {
      payload = internal_recv(source, tag).payload;
    } catch (...) {
      failure = std::current_exception();
    }
    {
      std::lock_guard lock(raw->mutex);
      raw->failure = failure;
      raw->payload = std::move(payload);
      raw->done = true;
    }
    raw->done_cv.notify_all();
  });
  return Request(std::move(state));
}

void Comm::barrier() {
  // Flat barrier through rank 0: arrive, then wait for release.
  const std::byte token{1};
  std::span<const std::byte> payload(&token, 1);
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      internal_recv(kAnySource, kTagBarrierArrive);
    }
    for (int r = 1; r < size(); ++r) {
      internal_send(r, kTagBarrierRelease, payload);
    }
  } else {
    internal_send(0, kTagBarrierArrive, payload);
    internal_recv(0, kTagBarrierRelease);
  }
}

void Comm::internal_send_for_subcomm(int dest, int tag,
                                     std::span<const std::byte> payload) {
  LBS_CHECK_MSG(tag <= -100000, "sub-communicator tag outside its block");
  internal_send(dest, tag, payload);
}

std::vector<std::byte> Comm::internal_recv_for_subcomm(int source, int tag) {
  LBS_CHECK_MSG(tag <= -100000, "sub-communicator tag outside its block");
  return internal_recv(source, tag).payload;
}

void Comm::check_single(std::size_t count) {
  LBS_CHECK_MSG(count == 1, "expected exactly one element");
}

void Comm::check_same_length(std::size_t got, std::size_t expected) {
  LBS_CHECK_MSG(got == expected,
                "reduce contributions must all have the same length");
}

void Comm::check_alignment(std::size_t bytes, std::size_t item_size) {
  LBS_CHECK_MSG(bytes % item_size == 0, "payload size not a multiple of item size");
}

void Comm::check_counts(std::size_t count_width) const {
  LBS_CHECK_MSG(count_width == static_cast<std::size_t>(size()),
                "counts vector must have one entry per rank");
}

void Comm::check_range(long long offset, std::size_t count, std::size_t total) {
  LBS_CHECK_MSG(offset >= 0 && static_cast<std::size_t>(offset) + count <= total,
                "scatter range exceeds send buffer");
}

}  // namespace lbs::mq
