#include "mq/comm.hpp"

#include <chrono>
#include <thread>

#include "mq/runtime_state.hpp"
#include "support/error.hpp"

namespace lbs::mq {

Comm::Comm(int rank, detail::RuntimeState& state) : rank_(rank), state_(state) {}

int Comm::size() const {
  return state_.options.ranks;
}

double Comm::wtime() const {
  auto elapsed = std::chrono::steady_clock::now() - state_.start;
  return std::chrono::duration<double>(elapsed).count();
}

double Comm::time_scale() const {
  return state_.options.time_scale;
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  LBS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  internal_send(dest, tag, payload);
}

Message Comm::recv_message(int source, int tag) {
  LBS_CHECK_MSG(tag >= 0 || tag == kAnyTag,
                "negative tags are reserved for collectives");
  return internal_recv(source, tag);
}

void Comm::internal_send(int dest, int tag, std::span<const std::byte> payload) {
  LBS_CHECK_MSG(dest >= 0 && dest < size(), "send to unknown rank");
  LBS_CHECK_MSG(dest != rank_, "send to self (collectives keep local data local)");
  if (state_.aborted.load(std::memory_order_relaxed)) {
    throw Error("runtime aborted");
  }

  // Emulated transfer: the sender's NIC is occupied for the whole
  // transfer (the single-port model — a root scattering to many ranks
  // serializes here, whether the sends are blocking or isend workers).
  if (state_.options.link_cost && state_.options.time_scale > 0.0) {
    double nominal = state_.options.link_cost(rank_, dest, payload.size());
    LBS_CHECK_MSG(nominal >= 0.0, "negative link cost");
    double real = nominal * state_.options.time_scale;
    if (real > 0.0) {
      std::lock_guard nic_lock(*state_.nic[static_cast<std::size_t>(rank_)]);
      std::this_thread::sleep_for(std::chrono::duration<double>(real));
    }
  }

  Message message;
  message.source = rank_;
  message.tag = tag;
  message.payload.assign(payload.begin(), payload.end());
  state_.mailboxes[static_cast<std::size_t>(dest)]->deposit(std::move(message));
}

Message Comm::internal_recv(int source, int tag) {
  LBS_CHECK_MSG(source == kAnySource || (source >= 0 && source < size()),
                "receive from unknown rank");
  return state_.mailboxes[static_cast<std::size_t>(rank_)]->retrieve(source, tag);
}

Request Comm::isend_bytes(int dest, int tag, std::vector<std::byte> payload) {
  LBS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  auto state = std::make_shared<Request::State>();
  Request::State* raw = state.get();
  state->worker = std::thread([this, dest, tag, payload = std::move(payload), raw] {
    std::exception_ptr failure;
    try {
      internal_send(dest, tag, payload);
    } catch (...) {
      failure = std::current_exception();
    }
    {
      std::lock_guard lock(raw->mutex);
      raw->failure = failure;
      raw->done = true;
    }
    raw->done_cv.notify_all();
  });
  return Request(std::move(state));
}

Request Comm::irecv(int source, int tag) {
  LBS_CHECK_MSG(tag >= 0 || tag == kAnyTag,
                "negative tags are reserved for collectives");
  auto state = std::make_shared<Request::State>();
  Request::State* raw = state.get();
  state->worker = std::thread([this, source, tag, raw] {
    std::exception_ptr failure;
    std::vector<std::byte> payload;
    try {
      payload = internal_recv(source, tag).payload;
    } catch (...) {
      failure = std::current_exception();
    }
    {
      std::lock_guard lock(raw->mutex);
      raw->failure = failure;
      raw->payload = std::move(payload);
      raw->done = true;
    }
    raw->done_cv.notify_all();
  });
  return Request(std::move(state));
}

void Comm::barrier() {
  // Flat barrier through rank 0: arrive, then wait for release.
  const std::byte token{1};
  std::span<const std::byte> payload(&token, 1);
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      internal_recv(kAnySource, kTagBarrierArrive);
    }
    for (int r = 1; r < size(); ++r) {
      internal_send(r, kTagBarrierRelease, payload);
    }
  } else {
    internal_send(0, kTagBarrierArrive, payload);
    internal_recv(0, kTagBarrierRelease);
  }
}

void Comm::internal_send_for_subcomm(int dest, int tag,
                                     std::span<const std::byte> payload) {
  LBS_CHECK_MSG(tag <= -100000, "sub-communicator tag outside its block");
  internal_send(dest, tag, payload);
}

std::vector<std::byte> Comm::internal_recv_for_subcomm(int source, int tag) {
  LBS_CHECK_MSG(tag <= -100000, "sub-communicator tag outside its block");
  return internal_recv(source, tag).payload;
}

void Comm::check_single(std::size_t count) {
  LBS_CHECK_MSG(count == 1, "expected exactly one element");
}

void Comm::check_alignment(std::size_t bytes, std::size_t item_size) {
  LBS_CHECK_MSG(bytes % item_size == 0, "payload size not a multiple of item size");
}

void Comm::check_counts(std::size_t count_width) const {
  LBS_CHECK_MSG(count_width == static_cast<std::size_t>(size()),
                "counts vector must have one entry per rank");
}

void Comm::check_range(long long offset, std::size_t count, std::size_t total) {
  LBS_CHECK_MSG(offset >= 0 && static_cast<std::size_t>(offset) + count <= total,
                "scatter range exceeds send buffer");
}

}  // namespace lbs::mq
