#include "mq/runtime.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "mq/runtime_state.hpp"
#include "support/error.hpp"

namespace lbs::mq {

void Runtime::run(const RuntimeOptions& options,
                  const std::function<void(Comm&)>& fn) {
  LBS_CHECK_MSG(options.ranks >= 1, "need at least one rank");
  LBS_CHECK_MSG(options.time_scale >= 0.0, "negative time scale");
  LBS_CHECK_MSG(fn != nullptr, "null rank function");

  detail::RuntimeState state(options);

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.ranks));
  for (int r = 0; r < options.ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(r, state);
      try {
        fn(comm);
      } catch (...) {
        {
          std::lock_guard lock(failure_mutex);
          if (!first_failure) first_failure = std::current_exception();
        }
        // Unblock every rank so the join below cannot deadlock.
        state.abort_all();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if (first_failure) std::rethrow_exception(first_failure);
}

void emulate_compute(const Comm& comm, double nominal_seconds) {
  LBS_CHECK_MSG(nominal_seconds >= 0.0, "negative compute time");
  double real = nominal_seconds * comm.time_scale();
  if (real > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(real));
  }
}

}  // namespace lbs::mq
