#include "mq/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include <string>

#include "mq/runtime_state.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace lbs::mq {

namespace {

// Enforces timed crash events: sleeps until each victim's real-time
// deadline and poisons its mailbox, so even a rank blocked in retrieve()
// dies on schedule. Stopped (and joined) when all rank threads are done.
class CrashWatchdog {
 public:
  explicit CrashWatchdog(detail::RuntimeState& state) : state_(state) {
    for (int r = 0; r < state_.options.ranks; ++r) {
      double at = state_.faults->crash_time(r);
      if (at > 0.0 && at < std::numeric_limits<double>::infinity()) {
        events_.push_back({at * state_.options.time_scale, r});
      }
    }
    std::sort(events_.begin(), events_.end());
    if (!events_.empty()) worker_ = std::thread([this] { run(); });
  }

  ~CrashWatchdog() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

 private:
  void run() {
    std::unique_lock lock(mutex_);
    for (const auto& [real_at, rank] : events_) {
      auto deadline = state_.start + std::chrono::duration_cast<
                                         std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(real_at));
      if (stop_cv_.wait_until(lock, deadline, [this] { return stop_; })) return;
      state_.kill_rank(rank);
    }
  }

  detail::RuntimeState& state_;
  std::vector<std::pair<double, int>> events_;  // (real seconds, rank)
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace

void Runtime::run(const RuntimeOptions& options,
                  const std::function<void(Comm&)>& fn) {
  LBS_CHECK_MSG(options.ranks >= 1, "need at least one rank");
  LBS_CHECK_MSG(options.time_scale >= 0.0, "negative time scale");
  LBS_CHECK_MSG(fn != nullptr, "null rank function");
  if (options.time_scale == 0.0) {
    for (const auto& crash : options.faults.crashes) {
      LBS_CHECK_MSG(crash.at_nominal_time <= 0.0,
                    "timed crashes require time_scale > 0 (no nominal clock)");
    }
  }

  detail::RuntimeState state(options);

  std::unique_ptr<CrashWatchdog> watchdog;
  if (state.faults) {
    // Crashes at (or before) time zero take effect before any rank runs.
    for (int r = 0; r < options.ranks; ++r) {
      if (state.faults->crash_time(r) <= 0.0) state.kill_rank(r);
    }
    if (state.faults->has_timed_crashes()) {
      watchdog = std::make_unique<CrashWatchdog>(state);
    }
  }

  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.ranks));
  for (int r = 0; r < options.ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(r, state);
      try {
        fn(comm);
      } catch (const RankCrashed&) {
        // Injected death: this rank is gone, the runtime is not. Make sure
        // the flag/mailbox reflect it and let survivors carry on.
        state.kill_rank(r);
      } catch (...) {
        {
          std::lock_guard lock(failure_mutex);
          if (!first_failure) first_failure = std::current_exception();
        }
        // Unblock every rank so the join below cannot deadlock.
        state.abort_all();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  watchdog.reset();

  // Publish the per-link / per-rank accumulators once the ranks are quiet
  // (the hot paths only did relaxed atomic adds into RuntimeState).
  if (options.metrics != nullptr) {
    for (int from = 0; from < options.ranks; ++from) {
      for (int to = 0; to < options.ranks; ++to) {
        std::uint64_t bytes =
            state.link_bytes[static_cast<std::size_t>(from) *
                                 static_cast<std::size_t>(options.ranks) +
                             static_cast<std::size_t>(to)]
                .load(std::memory_order_relaxed);
        if (bytes > 0) {
          options.metrics
              ->counter("mq.link.bytes[" + std::to_string(from) + "->" +
                        std::to_string(to) + "]")
              .add(bytes);
        }
      }
      options.metrics
          ->counter("mq.rank.nic_busy_ns[" + std::to_string(from) + "]")
          .add(state.nic_busy_ns[static_cast<std::size_t>(from)].load(
              std::memory_order_relaxed));
      options.metrics
          ->counter("mq.rank.recv_wait_ns[" + std::to_string(from) + "]")
          .add(state.recv_wait_ns[static_cast<std::size_t>(from)].load(
              std::memory_order_relaxed));
    }
  }

  if (first_failure) std::rethrow_exception(first_failure);
}

void emulate_compute(const Comm& comm, double nominal_seconds) {
  LBS_CHECK_MSG(nominal_seconds >= 0.0, "negative compute time");
  obs::Tracer* tracer = comm.tracer();
  const double begin = tracer != nullptr ? obs::wall_now() : 0.0;
  double real = nominal_seconds * comm.time_scale();
  if (real > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(real));
  }
  if (tracer != nullptr) {
    obs::TraceEvent event;
    event.type = obs::EventType::Compute;
    event.rank = comm.rank();
    event.start = begin;
    event.duration = obs::wall_now() - begin;
    tracer->record(event);
  }
  comm.check_failures();
}

}  // namespace lbs::mq
