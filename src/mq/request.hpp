// Nonblocking-operation handles for the mq runtime (MPI_Isend/Irecv-style).
//
// A Request represents an in-flight transfer progressed by a background
// thread. wait() blocks until completion (rethrowing any failure, e.g. a
// runtime abort); test() polls. For receives, take_payload() hands over
// the delivered bytes after completion.
//
// The paper deliberately does NOT overlap communication and computation
// ("we chose to keep the same communication structure as the original
// program"); these primitives exist to *measure* that design choice — see
// the overlap ablation — and to round out the runtime's API.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lbs::mq {

class Comm;

class Request {
 public:
  Request() = default;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  // Joins the worker (completing the operation) if still running.
  ~Request();

  // True once the operation finished (successfully or not); non-blocking.
  [[nodiscard]] bool test();

  // Blocks until completion; rethrows the operation's failure if any.
  void wait();

  // For completed receives: moves the payload out. Requires wait() first.
  [[nodiscard]] std::vector<std::byte> take_payload();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

 private:
  friend class Comm;

  struct State {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::exception_ptr failure;
    std::vector<std::byte> payload;
    std::thread worker;
  };

  explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace lbs::mq
