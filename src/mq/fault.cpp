#include "mq/fault.hpp"

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"

namespace lbs::mq {

namespace {

// splitmix64-style mixing of the plan seed with the message coordinates,
// so each (link, sequence) pair seeds an independent deterministic stream.
std::uint64_t mix(std::uint64_t seed, int from, int to, std::uint64_t seq) {
  std::uint64_t x = seed;
  x ^= 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(from + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x ^= 0x94d049bb133111ebULL + static_cast<std::uint64_t>(to + 1);
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= seq + 0x2545f4914f6cdd1dULL;
  x = (x ^ (x >> 31)) * 0xbf58476d1ce4e5b9ULL;
  return x ^ (x >> 29);
}

bool link_matches(const FaultPlan::LinkFault& fault, int from, int to,
                  double now) {
  if (fault.from != kAnyRank && fault.from != from) return false;
  if (fault.to != kAnyRank && fault.to != to) return false;
  return now >= fault.from_time && now < fault.to_time;
}

// Jitter-free delay multiplier of one fault at nominal time `now`.
double base_factor(const FaultPlan::LinkFault& fault, double now) {
  double factor = fault.delay_factor;
  if (fault.degradation_rate > 0.0) {
    factor *= 1.0 + fault.degradation_rate * std::max(0.0, now - fault.from_time);
  }
  return factor;
}

}  // namespace

long long FaultReport::total_delivered() const {
  long long total = 0;
  for (long long count : delivered) total += count;
  return total;
}

FaultInjector::FaultInjector(FaultPlan plan, int ranks)
    : plan_(std::move(plan)), ranks_(ranks) {
  LBS_CHECK_MSG(ranks_ >= 1, "fault injector needs at least one rank");
  for (const auto& fault : plan_.link_faults) {
    auto endpoint_ok = [&](int r) { return r == kAnyRank || (r >= 0 && r < ranks_); };
    LBS_CHECK_MSG(endpoint_ok(fault.from) && endpoint_ok(fault.to),
                  "link fault references unknown rank");
    LBS_CHECK_MSG(fault.delay_factor > 0.0, "link fault delay factor must be > 0");
    LBS_CHECK_MSG(fault.jitter >= 0.0 && fault.jitter < 1.0,
                  "link fault jitter must be in [0, 1)");
    LBS_CHECK_MSG(fault.drop_probability >= 0.0 && fault.drop_probability <= 1.0,
                  "drop probability must be in [0, 1]");
    LBS_CHECK_MSG(fault.degradation_rate >= 0.0, "negative degradation rate");
    LBS_CHECK_MSG(fault.from_time <= fault.to_time,
                  "link fault window ends before it starts");
  }
  crash_at_.assign(static_cast<std::size_t>(ranks_),
                   std::numeric_limits<double>::infinity());
  for (const auto& crash : plan_.crashes) {
    LBS_CHECK_MSG(crash.rank >= 0 && crash.rank < ranks_,
                  "crash references unknown rank");
    auto& at = crash_at_[static_cast<std::size_t>(crash.rank)];
    at = std::min(at, crash.at_nominal_time);
  }
  link_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(ranks_) * static_cast<std::size_t>(ranks_));
}

double FaultInjector::delay_factor(int from, int to, double now) const {
  double factor = 1.0;
  for (const auto& fault : plan_.link_faults) {
    if (link_matches(fault, from, to, now)) factor *= base_factor(fault, now);
  }
  return factor;
}

FaultInjector::Perturbation FaultInjector::perturb_send(int from, int to,
                                                        double now,
                                                        bool droppable) {
  auto slot = static_cast<std::size_t>(from) * static_cast<std::size_t>(ranks_) +
              static_cast<std::size_t>(to);
  std::uint64_t seq = link_seq_[slot].fetch_add(1, std::memory_order_relaxed);

  Perturbation result;
  double keep_probability = 1.0;
  support::Rng rng(mix(plan_.seed, from, to, seq));
  for (const auto& fault : plan_.link_faults) {
    if (!link_matches(fault, from, to, now)) continue;
    double factor = base_factor(fault, now);
    if (fault.jitter > 0.0) {
      factor *= 1.0 + fault.jitter * rng.uniform(-1.0, 1.0);
    }
    result.delay_factor *= factor;
    keep_probability *= 1.0 - fault.drop_probability;
  }
  if (droppable && keep_probability < 1.0) {
    result.dropped = rng.bernoulli(1.0 - keep_probability);
  }
  return result;
}

double FaultInjector::crash_time(int rank) const {
  LBS_CHECK_MSG(rank >= 0 && rank < ranks_, "crash time of unknown rank");
  return crash_at_[static_cast<std::size_t>(rank)];
}

bool FaultInjector::has_timed_crashes() const {
  return std::any_of(crash_at_.begin(), crash_at_.end(), [](double at) {
    return at > 0.0 && at < std::numeric_limits<double>::infinity();
  });
}

}  // namespace lbs::mq
