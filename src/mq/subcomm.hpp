// Sub-communicators (MPI_Comm_split) for the mq runtime.
//
// Grid codes group ranks by site to run site-local collectives (MagPIe's
// whole design, and how a hierarchical scatter would be structured).
// split() is collective: every rank of the parent calls it with a color
// (group id; kNoColor opts out) and a key (intra-group ordering, ties by
// parent rank). The returned SubComm offers the core collective set over
// the member subset, implemented on parent point-to-point with a tag
// block unique to this split, so several SubComms can operate without
// crosstalk (as long as each is used by its own members only).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "mq/comm.hpp"

namespace lbs::mq {

inline constexpr int kNoColor = -1;

class SubComm {
 public:
  [[nodiscard]] int rank() const { return my_index_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  // Parent rank of a sub-rank / of this process.
  [[nodiscard]] int parent_rank(int sub_rank) const;
  [[nodiscard]] int parent_rank() const { return parent_rank(my_index_); }

  void barrier();

  template <typename T>
  void bcast(int root, std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (my_index_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) send_to(r, kOpBcast, as_bytes(std::span<const T>(data)));
      }
    } else {
      data = decode<T>(recv_from(root, kOpBcast));
    }
  }

  template <typename T>
  std::vector<T> gatherv(int root, std::span<const T> contribution) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (my_index_ == root) {
      std::vector<T> all;
      for (int r = 0; r < size(); ++r) {
        if (r == root) {
          all.insert(all.end(), contribution.begin(), contribution.end());
        } else {
          auto chunk = decode<T>(recv_from(r, kOpGather));
          all.insert(all.end(), chunk.begin(), chunk.end());
        }
      }
      return all;
    }
    send_to(root, kOpGather, as_bytes(contribution));
    return {};
  }

  // Parameterized scatter within the group (counts indexed by sub-rank).
  template <typename T>
  std::vector<T> scatterv(int root, std::span<const T> send_data,
                          std::span<const long long> counts) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (my_index_ == root) {
      long long offset = 0;
      std::vector<T> own;
      for (int r = 0; r < size(); ++r) {
        auto count = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
        std::span<const T> chunk =
            send_data.subspan(static_cast<std::size_t>(offset), count);
        if (r == root) {
          own.assign(chunk.begin(), chunk.end());
        } else {
          send_to(r, kOpScatter, as_bytes(chunk));
        }
        offset += counts[static_cast<std::size_t>(r)];
      }
      return own;
    }
    return decode<T>(recv_from(root, kOpScatter));
  }

  template <typename T>
  std::vector<T> reduce(int root, std::span<const T> contribution,
                        const std::function<T(const T&, const T&)>& op) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (my_index_ == root) {
      std::vector<T> accumulator(contribution.begin(), contribution.end());
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        auto chunk = decode<T>(recv_from(r, kOpReduce));
        for (std::size_t i = 0; i < accumulator.size(); ++i) {
          accumulator[i] = op(accumulator[i], chunk[i]);
        }
      }
      return accumulator;
    }
    send_to(root, kOpReduce, as_bytes(contribution));
    return {};
  }

 private:
  friend SubComm split(Comm& comm, int color, int key);
  friend std::optional<SubComm> split_optional(Comm& comm, int color, int key);

  static constexpr int kOpBarrierArrive = 0;
  static constexpr int kOpBarrierRelease = 1;
  static constexpr int kOpBcast = 2;
  static constexpr int kOpGather = 3;
  static constexpr int kOpReduce = 4;
  static constexpr int kOpScatter = 5;
  static constexpr int kOpsPerSplit = 8;

  SubComm(Comm& parent, std::vector<int> members, int my_index, int tag_base);

  // Ops grow *downward* from tag_base_ so every sub-communicator tag stays
  // at or below the reserved floor.
  [[nodiscard]] int op_tag(int op) const { return tag_base_ - op; }
  void send_to(int sub_rank, int op, std::span<const std::byte> payload);
  std::vector<std::byte> recv_from(int sub_rank, int op);

  template <typename T>
  static std::span<const std::byte> as_bytes(std::span<const T> items) {
    return {reinterpret_cast<const std::byte*>(items.data()), items.size_bytes()};
  }
  template <typename T>
  static std::vector<T> decode(const std::vector<std::byte>& payload) {
    return Comm::decode<T>(payload);
  }

  Comm* parent_;
  std::vector<int> members_;  // parent ranks, in sub-rank order
  int my_index_;
  int tag_base_;
};

// Collective: every parent rank must call, in the same split sequence.
// Ranks passing kNoColor receive an empty optional (they still
// participate in the membership exchange).
std::optional<SubComm> split_optional(Comm& comm, int color, int key = 0);

// Convenience for the common all-ranks-have-a-group case; throws if this
// rank passed kNoColor.
SubComm split(Comm& comm, int color, int key = 0);

}  // namespace lbs::mq
