// Execution timelines and their summary metrics.
//
// The gridsim simulator produces one ProcessorTrace per processor —
// exactly the quantities plotted in the paper's Figures 2-4 (per-processor
// total time, communication time, amount of data) plus the receive window
// needed to draw Figure 1's stair.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "support/gantt.hpp"

namespace lbs::gridsim {

// Phase boundaries are half-open [start, end) intervals (the convention
// support::gantt shares): recv occupies [recv_start, recv_end), compute
// [recv_end, compute_end), gather [compute_end, gather_end). A zero-length
// phase (e.g. a processor assigned zero items) is no interval at all.
struct ProcessorTrace {
  std::string label;
  long long items = 0;
  double recv_start = 0.0;   // data starts arriving (root port granted)
  double recv_end = 0.0;     // data fully received; compute starts
  double compute_end = 0.0;  // computation finished
  double gather_end = 0.0;   // results delivered back to root (0 if no gather)

  // "comm. time" in the paper's figures: time spent receiving.
  [[nodiscard]] double comm_time() const { return recv_end - recv_start; }
  // Idle time waiting for earlier processors to be served (the stair).
  [[nodiscard]] double stair_idle() const { return recv_start; }
  [[nodiscard]] double finish() const {
    return gather_end > 0.0 ? gather_end : compute_end;
  }
};

struct Timeline {
  std::vector<ProcessorTrace> traces;

  [[nodiscard]] double makespan() const;
  [[nodiscard]] double earliest_finish() const;
  [[nodiscard]] double latest_finish() const;
  // (latest - earliest) / latest: the paper's "maximum difference in
  // finish times as a fraction of the total duration".
  [[nodiscard]] double finish_spread() const;
  // Total idle time spent waiting on the root port across processors —
  // the area of the stair region in Figure 4's reading.
  [[nodiscard]] double total_stair_idle() const;

  // Gantt rows (receive + compute phases) for Figure-1-style rendering.
  [[nodiscard]] std::vector<support::GanttRow> gantt_rows() const;
};

// The timeline as virtual-time trace events, structurally parallel to what
// the mq runtime records on the wall clock — the other half of the
// differential trace oracle (tests/trace_check.hpp). Per processor i:
//   comm.send  rank=root peer=i  over [recv_start, recv_end)  arg0=items
//   comm.recv  rank=i peer=root  over the same window         arg0=items
//   compute    rank=i            over [recv_end, compute_end) arg0=items
//   comm.send  rank=i peer=root  over [compute_end, gather_end)  (gather)
// `root` defaults to the last processor (the repo's root-last convention).
// The root's own chunk occupies the port in the simulator, so it appears
// as a rank==peer==root send; zero-length phases emit no event (the
// half-open [start, end) contract).
obs::TraceLog to_trace_log(const Timeline& timeline, int root = -1);

}  // namespace lbs::gridsim
