#include "gridsim/gridsim.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace lbs::gridsim {

namespace {

// One scatter + compute (+ gather) round starting at `start_time`.
// Returns the timeline (absolute times) and leaves `sim` drained.
Timeline run_round(des::Simulator& sim, const model::Platform& platform,
                   const core::Distribution& distribution,
                   const SimOptions& options, double start_time,
                   support::Rng& noise_rng) {
  int p = platform.size();
  Timeline timeline;
  timeline.traces.resize(static_cast<std::size_t>(p));

  // Per-processor speed profiles from perturbations.
  std::vector<des::SpeedProfile> profiles(static_cast<std::size_t>(p));
  for (const auto& perturbation : options.perturbations) {
    LBS_CHECK_MSG(perturbation.processor >= 0 && perturbation.processor < p,
                  "perturbation references unknown processor");
    profiles[static_cast<std::size_t>(perturbation.processor)].add_segment(
        perturbation.from, perturbation.to, perturbation.speed_factor);
  }

  des::SerialResource root_port(sim);

  for (int i = 0; i < p; ++i) {
    auto& trace = timeline.traces[static_cast<std::size_t>(i)];
    trace.label = platform[i].label;
    trace.items = distribution.counts[static_cast<std::size_t>(i)];
  }

  // The root sends to processors in turn (rank order): enqueue all sends
  // up front; the serial port serializes them in order.
  sim.schedule_at(start_time, [&] {
    for (int i = 0; i < p; ++i) {
      auto& trace = timeline.traces[static_cast<std::size_t>(i)];
      double send_duration = platform[i].comm(trace.items);
      root_port.request(
          send_duration,
          /*done=*/
          [&, i] {
            auto& t = timeline.traces[static_cast<std::size_t>(i)];
            t.recv_end = sim.now();
            // Compute phase: nominal seconds modulated by noise and the
            // processor's speed profile.
            double nominal = platform[i].comp(t.items);
            if (options.compute_noise > 0.0) {
              double factor =
                  std::max(0.05, 1.0 + options.compute_noise * noise_rng.normal());
              nominal *= factor;
            }
            double finish =
                profiles[static_cast<std::size_t>(i)].finish_time(sim.now(), nominal);
            sim.schedule_at(finish, [&, i] {
              auto& done_trace = timeline.traces[static_cast<std::size_t>(i)];
              done_trace.compute_end = sim.now();
              if (options.gather_ratio > 0.0) {
                // Result transfer back through the root port, FIFO.
                double volume = options.gather_ratio *
                                static_cast<double>(done_trace.items);
                double duration =
                    platform[i].comm(static_cast<long long>(std::llround(volume)));
                root_port.request(duration, [&, i] {
                  timeline.traces[static_cast<std::size_t>(i)].gather_end = sim.now();
                });
              }
            });
          },
          /*started=*/
          [&, i] { timeline.traces[static_cast<std::size_t>(i)].recv_start = sim.now(); });
    }
  });

  sim.run();
  return timeline;
}

}  // namespace

SimResult simulate_scatter(const model::Platform& platform,
                           const core::Distribution& distribution,
                           const SimOptions& options) {
  core::validate(platform, distribution, distribution.total());
  LBS_CHECK_MSG(options.gather_ratio >= 0.0, "negative gather ratio");
  LBS_CHECK_MSG(options.compute_noise >= 0.0, "negative noise");

  des::Simulator sim;
  support::Rng noise_rng(options.noise_seed);
  SimResult result;
  result.timeline = run_round(sim, platform, distribution, options, 0.0, noise_rng);
  result.events_processed = sim.processed_events();
  return result;
}

std::vector<SimResult> simulate_rounds_overlapped(
    const model::Platform& platform, const core::Distribution& distribution,
    int rounds) {
  LBS_CHECK_MSG(rounds >= 1, "need at least one round");
  core::validate(platform, distribution, distribution.total());

  int p = platform.size();
  des::Simulator sim;
  des::SerialResource root_port(sim);

  std::vector<Timeline> timelines(static_cast<std::size_t>(rounds));
  for (auto& timeline : timelines) {
    timeline.traces.resize(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      timeline.traces[static_cast<std::size_t>(i)].label = platform[i].label;
      timeline.traces[static_cast<std::size_t>(i)].items =
          distribution.counts[static_cast<std::size_t>(i)];
    }
  }

  // compute_end of the previous round per processor (round dependency).
  std::vector<double> previous_end(static_cast<std::size_t>(p), 0.0);

  // Enqueue every round's sends in order; the FIFO port serializes them,
  // so round r+1's transfers start exactly when the port goes idle.
  sim.schedule_at(0.0, [&] {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < p; ++i) {
        auto& trace = timelines[static_cast<std::size_t>(r)]
                          .traces[static_cast<std::size_t>(i)];
        double send_duration = platform[i].comm(trace.items);
        root_port.request(
            send_duration,
            /*done=*/
            [&, r, i] {
              auto& done_trace = timelines[static_cast<std::size_t>(r)]
                                     .traces[static_cast<std::size_t>(i)];
              done_trace.recv_end = sim.now();
              // Compute starts once the data is here AND the previous
              // round's compute is finished. (The root is the last port
              // request of its round, so its compute waits for the whole
              // round to be sent.)
              double start =
                  std::max(sim.now(), previous_end[static_cast<std::size_t>(i)]);
              double end = start + platform[i].comp(done_trace.items);
              previous_end[static_cast<std::size_t>(i)] = end;
              sim.schedule_at(end, [&, r, i] {
                timelines[static_cast<std::size_t>(r)]
                    .traces[static_cast<std::size_t>(i)]
                    .compute_end = sim.now();
              });
            },
            /*started=*/
            [&, r, i] {
              timelines[static_cast<std::size_t>(r)]
                  .traces[static_cast<std::size_t>(i)]
                  .recv_start = sim.now();
            });
      }
    }
  });
  sim.run();

  std::vector<SimResult> results;
  for (auto& timeline : timelines) {
    SimResult result;
    result.timeline = std::move(timeline);
    results.push_back(std::move(result));
  }
  if (!results.empty()) {
    results.back().events_processed = sim.processed_events();
  }
  return results;
}

std::vector<SimResult> simulate_rounds(const model::Platform& platform,
                                       const core::Distribution& distribution,
                                       int rounds, const SimOptions& options) {
  LBS_CHECK_MSG(rounds >= 1, "need at least one round");
  core::validate(platform, distribution, distribution.total());

  std::vector<SimResult> results;
  des::Simulator sim;
  support::Rng noise_rng(options.noise_seed);
  double start = 0.0;
  for (int round = 0; round < rounds; ++round) {
    SimResult result;
    std::uint64_t before = sim.processed_events();
    result.timeline = run_round(sim, platform, distribution, options, start, noise_rng);
    result.events_processed = sim.processed_events() - before;
    start = result.timeline.latest_finish();  // barrier before the next round
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace lbs::gridsim
