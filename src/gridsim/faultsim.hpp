// Virtual-time replay of the fault-tolerant scatter protocol.
//
// Mirrors mq::Comm::scatterv_ft under the same FaultPlan, but on the
// simulator's nominal clock: the root serves receivers in turn through its
// single port, data chunks pay the plan's (deterministic) delay factor and
// jitter, droppable chunks are retried with exponential backoff, and a
// receiver that crashed (or whose ack the root gave up waiting for) is
// evicted and its items re-planned over the survivors — the identical
// recovery protocol, at scales the threaded runtime can't reach, with
// bit-for-bit reproducible FaultReports (no real sleeps anywhere).
//
// Because the same FaultInjector hash drives drop/jitter decisions on both
// substrates, a plan whose deaths are crash-driven produces the same
// victims and re-routed counts here as in an mq run.
//
// Fidelity notes: acks are instantaneous (the mq ack is one item's
// transfer), and crashes after a rank's final ack but before `done` are
// detected here exactly when they are in mq (final sweep). Compute-phase
// crashes are not modeled — the scatter is over by then.
#pragma once

#include <functional>

#include "core/distribution.hpp"
#include "gridsim/timeline.hpp"
#include "model/platform.hpp"
#include "mq/fault.hpp"

namespace lbs::gridsim {

struct FtSimOptions {
  // Nominal seconds the root waits for a missing ack before evicting.
  double ack_timeout = 1.0;

  mq::RetryPolicy retry;  // for droppable data chunks (backoff is nominal)

  // Same contract as mq::ScattervFtOptions::replan; default near-uniform.
  std::function<std::vector<long long>(const std::vector<int>& alive,
                                       long long items)> replan;
};

struct FtSimResult {
  Timeline timeline;      // traces carry each rank's *final* item count
  mq::FaultReport report; // deaths/rerouting; times are virtual seconds
  // Virtual-time trace of the protocol: one comm.send span per transmission
  // attempt (arg1 = 1 for attempts the fault layer dropped), rank.death and
  // recovery.replan instants at their exact virtual times, and per-survivor
  // comm.recv / compute spans. Deterministic — bit-identical across runs —
  // which is what the golden-trace regression tests pin down.
  obs::TraceLog trace;
};

// Replays one fault-tolerant scatter + compute round. The root is the last
// platform position (paper convention); distribution lists the initial
// per-position shares. Throws lbs::Error when every worker dies.
FtSimResult simulate_scatter_ft(const model::Platform& platform,
                                const core::Distribution& distribution,
                                const mq::FaultPlan& plan,
                                const FtSimOptions& options = {});

}  // namespace lbs::gridsim
