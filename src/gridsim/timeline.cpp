#include "gridsim/timeline.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::gridsim {

double Timeline::makespan() const {
  return latest_finish();
}

double Timeline::earliest_finish() const {
  LBS_CHECK_MSG(!traces.empty(), "empty timeline");
  double earliest = traces.front().finish();
  for (const auto& trace : traces) earliest = std::min(earliest, trace.finish());
  return earliest;
}

double Timeline::latest_finish() const {
  LBS_CHECK_MSG(!traces.empty(), "empty timeline");
  double latest = traces.front().finish();
  for (const auto& trace : traces) latest = std::max(latest, trace.finish());
  return latest;
}

double Timeline::finish_spread() const {
  double latest = latest_finish();
  if (latest == 0.0) return 0.0;
  return (latest - earliest_finish()) / latest;
}

double Timeline::total_stair_idle() const {
  double total = 0.0;
  for (const auto& trace : traces) total += trace.stair_idle();
  return total;
}

std::vector<support::GanttRow> Timeline::gantt_rows() const {
  std::vector<support::GanttRow> rows;
  for (const auto& trace : traces) {
    support::GanttRow row;
    row.label = trace.label;
    if (trace.recv_end > trace.recv_start) {
      row.spans.push_back({trace.recv_start, trace.recv_end,
                           support::PhaseKind::Receive});
    }
    if (trace.compute_end > trace.recv_end) {
      row.spans.push_back({trace.recv_end, trace.compute_end,
                           support::PhaseKind::Compute});
    }
    if (trace.gather_end > trace.compute_end) {
      row.spans.push_back({trace.compute_end, trace.gather_end,
                           support::PhaseKind::Send});
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace lbs::gridsim
