#include "gridsim/timeline.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::gridsim {

double Timeline::makespan() const {
  return latest_finish();
}

double Timeline::earliest_finish() const {
  LBS_CHECK_MSG(!traces.empty(), "empty timeline");
  double earliest = traces.front().finish();
  for (const auto& trace : traces) earliest = std::min(earliest, trace.finish());
  return earliest;
}

double Timeline::latest_finish() const {
  LBS_CHECK_MSG(!traces.empty(), "empty timeline");
  double latest = traces.front().finish();
  for (const auto& trace : traces) latest = std::max(latest, trace.finish());
  return latest;
}

double Timeline::finish_spread() const {
  double latest = latest_finish();
  if (latest == 0.0) return 0.0;
  return (latest - earliest_finish()) / latest;
}

double Timeline::total_stair_idle() const {
  double total = 0.0;
  for (const auto& trace : traces) total += trace.stair_idle();
  return total;
}

obs::TraceLog to_trace_log(const Timeline& timeline, int root) {
  const int p = static_cast<int>(timeline.traces.size());
  LBS_CHECK_MSG(p >= 1, "empty timeline");
  if (root < 0) root = p - 1;
  LBS_CHECK_MSG(root < p, "root index outside the timeline");

  obs::TraceLog log;
  auto span = [&](obs::EventType type, int rank, int peer, double start,
                  double end, long long items) {
    if (end <= start) return;  // half-open [start, end): zero-length = nothing
    obs::TraceEvent event;
    event.type = type;
    event.clock = obs::Clock::Virtual;
    event.rank = rank;
    event.peer = peer;
    event.start = start;
    event.duration = end - start;
    event.arg0 = items;
    log.events.push_back(event);
  };

  for (int i = 0; i < p; ++i) {
    const auto& trace = timeline.traces[static_cast<std::size_t>(i)];
    span(obs::EventType::CommSend, root, i, trace.recv_start, trace.recv_end,
         trace.items);
    if (i != root) {
      span(obs::EventType::CommRecv, i, root, trace.recv_start, trace.recv_end,
           trace.items);
    }
    span(obs::EventType::Compute, i, -1, trace.recv_end, trace.compute_end,
         trace.items);
    if (trace.gather_end > 0.0 && i != root) {
      span(obs::EventType::CommSend, i, root, trace.compute_end,
           trace.gather_end, trace.items);
      span(obs::EventType::CommRecv, root, i, trace.compute_end,
           trace.gather_end, trace.items);
    }
  }
  log.sort();
  return log;
}

std::vector<support::GanttRow> Timeline::gantt_rows() const {
  std::vector<support::GanttRow> rows;
  for (const auto& trace : traces) {
    support::GanttRow row;
    row.label = trace.label;
    if (trace.recv_end > trace.recv_start) {
      row.spans.push_back({trace.recv_start, trace.recv_end,
                           support::PhaseKind::Receive});
    }
    if (trace.compute_end > trace.recv_end) {
      row.spans.push_back({trace.recv_end, trace.compute_end,
                           support::PhaseKind::Compute});
    }
    if (trace.gather_end > trace.compute_end) {
      row.spans.push_back({trace.compute_end, trace.gather_end,
                           support::PhaseKind::Send});
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace lbs::gridsim
