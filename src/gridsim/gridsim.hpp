// Grid execution simulator.
//
// Replays a scatter + compute (+ optional gather) execution of a
// distribution on a platform under the paper's hardware model: a
// single-port root serving receivers in turn (Section 2.3), per-processor
// cost functions, and optional background-load perturbations (piecewise
// speed profiles, e.g. Figure 4's "peak load on sekhmet"). Built on the
// des/ engine so richer scenarios (multi-round iterative codes) compose.
//
// With no perturbations, no noise, and no gather, the simulated finish
// times equal Eq. 1 exactly — the simulator and the analytic model agree
// by construction, which is what lets the bench harness regenerate the
// paper's figures.
#pragma once

#include <optional>
#include <vector>

#include "core/distribution.hpp"
#include "des/simulator.hpp"
#include "gridsim/timeline.hpp"
#include "model/platform.hpp"
#include "support/rng.hpp"

namespace lbs::gridsim {

struct SimOptions {
  // Per-item result volume sent back to the root after computing; 0
  // disables the gather phase. The gather uses the same link cost
  // functions and a single-port root, first-come first-served.
  double gather_ratio = 0.0;

  // Multiplicative log-normal-ish noise on compute durations: each
  // processor's compute time is scaled by max(0.05, 1 + noise * N(0,1)).
  // 0 = deterministic. Models the measurement scatter of real runs.
  double compute_noise = 0.0;
  std::uint64_t noise_seed = 1;

  // Background-load perturbations, indexed by processor position.
  struct Perturbation {
    int processor = 0;
    double from = 0.0;
    double to = 0.0;
    double speed_factor = 1.0;  // < 1 slows the processor down
  };
  std::vector<Perturbation> perturbations;
};

struct SimResult {
  Timeline timeline;
  std::uint64_t events_processed = 0;
};

// Simulates one scatter + compute (+ gather) round.
SimResult simulate_scatter(const model::Platform& platform,
                           const core::Distribution& distribution,
                           const SimOptions& options = {});

// Simulates `rounds` identical rounds back-to-back (an iterative code that
// re-scatters each iteration, as seismic tomography does across velocity-
// model updates). Round r+1's scatter starts only after every processor
// finished round r (the barrier an MPI collective implies). Returns one
// timeline per round, with absolute times.
std::vector<SimResult> simulate_rounds(const model::Platform& platform,
                                       const core::Distribution& distribution,
                                       int rounds, const SimOptions& options = {});

// Ablation of the paper's no-overlap design choice ("we chose to keep the
// same communication structure as the original program... we do not
// consider interlacing computation and communication phases"): a
// pipelined schedule where the root streams round r+1's data as soon as
// its port is free, while processors still compute round r. Processor i's
// round-r compute starts at max(recv_end(i, r), compute_end(i, r-1)); the
// root computes a round once it has sent that round's data. Perturbations,
// noise, and gather are not supported in this mode (it isolates the pure
// pipelining effect). Returns one timeline per round, absolute times.
std::vector<SimResult> simulate_rounds_overlapped(
    const model::Platform& platform, const core::Distribution& distribution,
    int rounds);

}  // namespace lbs::gridsim
