#include "gridsim/faultsim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace lbs::gridsim {

namespace {

struct Segment {
  long long count = 0;
};

std::vector<long long> uniform_replan(std::size_t parts, long long items) {
  std::vector<long long> counts(parts, items / static_cast<long long>(parts));
  auto extra = static_cast<std::size_t>(items % static_cast<long long>(parts));
  for (std::size_t i = 0; i < extra; ++i) ++counts[i];
  return counts;
}

}  // namespace

FtSimResult simulate_scatter_ft(const model::Platform& platform,
                                const core::Distribution& distribution,
                                const mq::FaultPlan& plan,
                                const FtSimOptions& options) {
  core::validate(platform, distribution, distribution.total());
  LBS_CHECK_MSG(options.ack_timeout > 0.0, "ack timeout must be positive");
  LBS_CHECK_MSG(options.retry.max_attempts >= 1, "retry policy needs >= 1 attempt");
  LBS_CHECK_MSG(options.retry.backoff >= 0.0 && options.retry.multiplier >= 1.0,
                "invalid retry backoff");

  const int p = platform.size();
  const int root = p - 1;
  mq::FaultInjector injector(plan, p);

  FtSimResult result;
  result.report.delivered.assign(static_cast<std::size_t>(p), 0);
  auto& delivered = result.report.delivered;
  result.timeline.traces.resize(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    result.timeline.traces[static_cast<std::size_t>(i)].label = platform[i].label;
  }

  double now = 0.0;
  std::vector<char> dead(static_cast<std::size_t>(p), 0);
  std::vector<long long> assigned(static_cast<std::size_t>(p), 0);
  std::vector<double> recv_start(static_cast<std::size_t>(p),
                                 std::numeric_limits<double>::quiet_NaN());
  std::vector<double> recv_end(static_cast<std::size_t>(p), 0.0);
  std::deque<std::pair<int, Segment>> queue;
  long long pool = 0;

  auto crashed_by = [&](int rank, double time) {
    return injector.crash_time(rank) <= time;
  };

  auto record_span = [&](obs::EventType type, int rank, int peer, double start,
                         double end, long long arg0, long long arg1 = 0) {
    if (end <= start) return;  // half-open [start, end)
    obs::TraceEvent event;
    event.type = type;
    event.clock = obs::Clock::Virtual;
    event.rank = rank;
    event.peer = peer;
    event.start = start;
    event.duration = end - start;
    event.arg0 = arg0;
    event.arg1 = arg1;
    result.trace.events.push_back(event);
  };
  auto record_instant = [&](obs::EventType type, int rank, int peer,
                            long long arg0, long long arg1 = 0) {
    obs::TraceEvent event;
    event.type = type;
    event.clock = obs::Clock::Virtual;
    event.instant = true;
    event.rank = rank;
    event.peer = peer;
    event.start = now;
    event.arg0 = arg0;
    event.arg1 = arg1;
    result.trace.events.push_back(event);
  };

  auto mark_dead = [&](int rank) {
    dead[static_cast<std::size_t>(rank)] = 1;
    long long undelivered = assigned[static_cast<std::size_t>(rank)];
    pool += undelivered;
    assigned[static_cast<std::size_t>(rank)] = 0;
    delivered[static_cast<std::size_t>(rank)] = 0;
    result.report.deaths.push_back({rank, now, undelivered});
    record_instant(obs::EventType::RankDeath, rank, root, undelivered);
  };

  for (int r = 0; r < p; ++r) {
    long long count = distribution.counts[static_cast<std::size_t>(r)];
    if (r == root) {
      delivered[static_cast<std::size_t>(root)] = count;
    } else if (count > 0) {
      queue.push_back({r, Segment{count}});
    }
  }

  auto replan_pool = [&] {
    std::vector<int> alive;
    for (int r = 0; r < root; ++r) {
      if (!dead[static_cast<std::size_t>(r)]) alive.push_back(r);
    }
    if (alive.empty()) {
      throw Error("simulate_scatter_ft: all workers dead, cannot re-route remainder");
    }
    alive.push_back(root);
    auto new_counts = options.replan ? options.replan(alive, pool)
                                     : uniform_replan(alive.size(), pool);
    LBS_CHECK_MSG(new_counts.size() == alive.size(),
                  "replanner returned wrong number of counts");
    long long planned = 0;
    for (long long count : new_counts) {
      LBS_CHECK_MSG(count >= 0, "replanner returned negative count");
      planned += count;
    }
    LBS_CHECK_MSG(planned == pool, "replanner counts do not sum to the remainder");
    for (std::size_t i = 0; i < alive.size(); ++i) {
      if (new_counts[i] == 0) continue;
      if (alive[i] == root) {
        delivered[static_cast<std::size_t>(root)] += new_counts[i];
      } else {
        queue.push_back({alive[i], Segment{new_counts[i]}});
      }
    }
    result.report.rerouted_items += pool;
    ++result.report.replan_rounds;
    record_instant(obs::EventType::RecoveryReplan, root, -1, pool,
                   result.report.replan_rounds);
    pool = 0;
  };

  for (;;) {
    while (!queue.empty()) {
      auto [r, segment] = queue.front();
      queue.pop_front();
      if (dead[static_cast<std::size_t>(r)]) {
        pool += segment.count;
        continue;
      }
      assigned[static_cast<std::size_t>(r)] += segment.count;
      if (crashed_by(r, now)) {
        mark_dead(r);
        continue;
      }
      // Transmit, retrying through drops (each attempt occupies the root
      // port for the full perturbed duration — the bytes went out).
      bool sent = false;
      double backoff = options.retry.backoff;
      for (int attempt = 0; attempt < options.retry.max_attempts; ++attempt) {
        if (attempt > 0) {
          now += backoff;
          backoff *= options.retry.multiplier;
        }
        auto perturbation =
            injector.perturb_send(root, r, now, /*droppable=*/true);
        double duration =
            platform[r].comm(segment.count) * perturbation.delay_factor;
        auto index = static_cast<std::size_t>(r);
        if (std::isnan(recv_start[index])) recv_start[index] = now;
        record_span(obs::EventType::CommSend, root, r, now, now + duration,
                    segment.count, perturbation.dropped ? 1 : 0);
        now += duration;
        if (!perturbation.dropped) {
          sent = true;
          break;
        }
      }
      bool acked = sent && !crashed_by(r, now);
      if (acked) {
        delivered[static_cast<std::size_t>(r)] += segment.count;
        recv_end[static_cast<std::size_t>(r)] = now;
      } else {
        if (sent) now += options.ack_timeout;  // waited for an ack that never came
        mark_dead(r);                          // eviction is free in virtual time
      }
    }
    if (pool > 0) {
      replan_pool();
      continue;
    }
    bool found_late_death = false;
    for (int r = 0; r < root; ++r) {
      if (!dead[static_cast<std::size_t>(r)] && crashed_by(r, now)) {
        mark_dead(r);
        found_late_death = true;
      }
    }
    if (!found_late_death) break;
    if (pool > 0) replan_pool();
  }

  // Compute phase: workers start when their last chunk arrived, the root
  // once its port is free (the paper's root computes after sending).
  recv_end[static_cast<std::size_t>(root)] = now;
  double makespan = 0.0;
  for (int i = 0; i < p; ++i) {
    auto index = static_cast<std::size_t>(i);
    auto& trace = result.timeline.traces[index];
    trace.items = delivered[index];
    if (dead[index]) continue;
    trace.recv_start = std::isnan(recv_start[index]) ? recv_end[index]
                                                     : recv_start[index];
    trace.recv_end = recv_end[index];
    trace.compute_end = recv_end[index] + platform[i].comp(delivered[index]);
    makespan = std::max(makespan, trace.compute_end);
    if (i != root) {
      record_span(obs::EventType::CommRecv, i, root, trace.recv_start,
                  trace.recv_end, delivered[index]);
    }
    record_span(obs::EventType::Compute, i, -1, trace.recv_end,
                trace.compute_end, delivered[index]);
  }
  result.report.elapsed = makespan;
  result.trace.sort();
  return result;
}

}  // namespace lbs::gridsim
