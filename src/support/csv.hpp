// Minimal CSV writer (RFC-4180 quoting) for bench output series.
//
// Every figure-reproducing bench can dump its series as CSV next to the
// human-readable table so the plots can be regenerated externally.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace lbs::support {

class CsvWriter {
 public:
  // Writes to an externally owned stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  void write_row(const std::vector<std::string>& cells);
  void write_row(std::initializer_list<std::string> cells);

  // Convenience: formats doubles with full round-trip precision.
  static std::string cell(double value);
  static std::string cell(long long value);

 private:
  std::ostream& out_;
};

// Quotes a cell if it contains commas, quotes, or newlines.
std::string csv_escape(const std::string& cell);

}  // namespace lbs::support
