#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace lbs::support {

double Summary::relative_spread() const {
  if (max == 0.0) return 0.0;
  return (max - min) / max;
}

Summary summarize(std::span<const double> values) {
  LBS_CHECK_MSG(!values.empty(), "summarize of empty range");
  Summary result;
  result.count = values.size();
  result.min = values.front();
  result.max = values.front();
  for (double v : values) {
    result.sum += v;
    result.min = std::min(result.min, v);
    result.max = std::max(result.max, v);
  }
  result.mean = result.sum / static_cast<double>(result.count);
  double variance = 0.0;
  for (double v : values) {
    double d = v - result.mean;
    variance += d * d;
  }
  result.stddev = std::sqrt(variance / static_cast<double>(result.count));
  return result;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  LBS_CHECK(xs.size() == ys.size());
  LBS_CHECK_MSG(xs.size() >= 2, "fit_line needs at least two samples");
  auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  LBS_CHECK_MSG(denom != 0.0, "fit_line with degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double r = ys[i] - fit.at(xs[i]);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double fit_proportional(std::span<const double> xs, std::span<const double> ys) {
  LBS_CHECK(xs.size() == ys.size());
  LBS_CHECK_MSG(!xs.empty(), "fit_proportional of empty range");
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  LBS_CHECK_MSG(sxx != 0.0, "fit_proportional with all-zero x values");
  return sxy / sxx;
}

double quantile(std::span<const double> values, double q) {
  LBS_CHECK(!values.empty());
  LBS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  double position = q * static_cast<double>(sorted.size() - 1);
  auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= sorted.size()) return sorted.back();
  double fraction = position - static_cast<double>(lower);
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

}  // namespace lbs::support
