#include "support/error.hpp"

#include <sstream>

namespace lbs::detail {

void raise_check_failure(const char* expr, const std::string& msg,
                         const std::source_location& loc) {
  std::ostringstream out;
  out << "check failed: " << expr;
  if (!msg.empty()) out << " — " << msg;
  out << " [" << loc.file_name() << ':' << loc.line() << " in "
      << loc.function_name() << ']';
  throw Error(out.str());
}

}  // namespace lbs::detail
