// Checksums for data that crosses a trust boundary: the service's wire
// frames (a chaos-injected or hostile peer can flip bytes) and the plan
// cache's on-disk snapshots (a crash can tear a write).
//
// crc32: the IEEE CRC-32 (the zlib/Ethernet polynomial, reflected),
// table-driven, one byte per step. Fast enough for the frame sizes the
// service moves (a plan response is hundreds of bytes; the 16 MiB frame
// cap bounds the worst case), and — unlike a sum — it catches the burst
// and single-bit errors a torn write or flipped wire byte produces.
// Incremental: feed the previous return value back in as `seed` to
// checksum data in pieces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbs::support {

[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32(const std::vector<std::uint8_t>& data,
                                         std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace lbs::support
