#include "support/hash_ring.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::support {

namespace {

// splitmix64 finalizer: full-avalanche mixing so sequential virtual-node
// indices and structurally similar ids land far apart on the circle.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

HashRing::HashRing(int virtual_nodes) : virtual_nodes_(virtual_nodes) {
  LBS_CHECK_MSG(virtual_nodes >= 1, "hash ring needs >= 1 virtual node");
}

std::uint64_t HashRing::mix(std::uint64_t value) { return splitmix64(value); }

void HashRing::add_node(const std::string& id) {
  LBS_CHECK_MSG(!id.empty(), "hash ring node id must be non-empty");
  LBS_CHECK_MSG(std::find(ids_.begin(), ids_.end(), id) == ids_.end(),
                "hash ring node id already present: " + id);
  ids_.push_back(id);
  rebuild();
}

void HashRing::remove_node(const std::string& id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  LBS_CHECK_MSG(it != ids_.end(), "hash ring node id not present: " + id);
  ids_.erase(it);
  rebuild();
}

void HashRing::rebuild() {
  // Point positions are a pure function of (id, virtual index) — never of
  // membership — which is what bounds remap on add/remove to the changed
  // node's own share.
  ring_.clear();
  ring_.reserve(ids_.size() * static_cast<std::size_t>(virtual_nodes_));
  for (std::size_t node = 0; node < ids_.size(); ++node) {
    std::uint64_t seed = fnv1a(ids_[node]);
    for (int v = 0; v < virtual_nodes_; ++v) {
      std::uint64_t position =
          splitmix64(seed ^ (static_cast<std::uint64_t>(v) * 0xc2b2ae3d27d4eb4fULL));
      ring_.push_back({position, static_cast<std::uint32_t>(node)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.position < b.position || (a.position == b.position && a.node < b.node);
  });
}

const std::string& HashRing::node_for(std::uint64_t key_hash) const {
  LBS_CHECK_MSG(!ring_.empty(), "hash ring is empty");
  std::uint64_t where = mix(key_hash);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), where,
      [](const Point& point, std::uint64_t value) { return point.position < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top of the circle
  return ids_[it->node];
}

std::vector<const std::string*> HashRing::nodes_for(std::uint64_t key_hash,
                                                    std::size_t count) const {
  LBS_CHECK_MSG(!ring_.empty(), "hash ring is empty");
  count = std::min(count, ids_.size());
  std::vector<const std::string*> out;
  out.reserve(count);
  std::vector<bool> seen(ids_.size(), false);
  std::uint64_t where = mix(key_hash);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), where,
      [](const Point& point, std::uint64_t value) { return point.position < value; });
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < count; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->node]) {
      seen[it->node] = true;
      out.push_back(&ids_[it->node]);
    }
    ++it;
  }
  return out;
}

}  // namespace lbs::support
