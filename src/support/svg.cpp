#include "support/svg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace lbs::support {

namespace {

const char* phase_color(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::Idle: return "#eeeeee";
    case PhaseKind::Receive: return "#4878a8";
    case PhaseKind::Send: return "#5a9a68";
    case PhaseKind::Compute: return "#e08a3c";
  }
  return "#000000";
}

std::string xml_escape(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    switch (c) {
      case '&': escaped += "&amp;"; break;
      case '<': escaped += "&lt;"; break;
      case '>': escaped += "&gt;"; break;
      case '"': escaped += "&quot;"; break;
      default: escaped.push_back(c);
    }
  }
  return escaped;
}

}  // namespace

std::string render_svg_gantt(const std::vector<GanttRow>& rows,
                             const SvgOptions& options) {
  LBS_CHECK_MSG(options.width_px > options.label_width_px + 50,
                "svg too narrow for labels");
  double max_end = 0.0;
  for (const auto& row : rows) {
    for (const auto& span : row.spans) max_end = std::max(max_end, span.end);
  }
  if (max_end <= 0.0) max_end = 1.0;

  int header = options.title.empty() ? 10 : 34;
  int axis_height = 28;
  int legend_height = 26;
  int chart_width = options.width_px - options.label_width_px - 20;
  int height = header + static_cast<int>(rows.size()) * options.row_height_px +
               axis_height + legend_height;
  double x_scale = static_cast<double>(chart_width) / max_end;
  int x0 = options.label_width_px;

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width_px
      << "\" height=\"" << height << "\" font-family=\"sans-serif\" font-size=\"12\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    out << "<text x=\"" << options.width_px / 2
        << "\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">"
        << xml_escape(options.title) << "</text>\n";
  }

  for (std::size_t r = 0; r < rows.size(); ++r) {
    int y = header + static_cast<int>(r) * options.row_height_px;
    int bar_height = options.row_height_px - 6;
    out << "<text x=\"" << x0 - 8 << "\" y=\"" << y + bar_height - 4
        << "\" text-anchor=\"end\">" << xml_escape(rows[r].label) << "</text>\n";
    // Idle background for the whole row.
    out << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\"" << chart_width
        << "\" height=\"" << bar_height << "\" fill=\"" << phase_color(PhaseKind::Idle)
        << "\"/>\n";
    for (const auto& span : rows[r].spans) {
      if (span.end <= span.start) continue;
      double x = x0 + span.start * x_scale;
      double width = (span.end - span.start) * x_scale;
      out << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
          << std::max(width, 0.5) << "\" height=\"" << bar_height << "\" fill=\""
          << phase_color(span.kind) << "\"/>\n";
    }
  }

  // Time axis with 5 ticks.
  int axis_y = header + static_cast<int>(rows.size()) * options.row_height_px + 4;
  out << "<line x1=\"" << x0 << "\" y1=\"" << axis_y << "\" x2=\""
      << x0 + chart_width << "\" y2=\"" << axis_y << "\" stroke=\"black\"/>\n";
  for (int tick = 0; tick <= 5; ++tick) {
    double t = max_end * tick / 5.0;
    double x = x0 + t * x_scale;
    out << "<line x1=\"" << x << "\" y1=\"" << axis_y << "\" x2=\"" << x
        << "\" y2=\"" << axis_y + 4 << "\" stroke=\"black\"/>\n";
    out << "<text x=\"" << x << "\" y=\"" << axis_y + 17
        << "\" text-anchor=\"middle\">" << format_seconds(t) << "</text>\n";
  }

  // Legend.
  int legend_y = axis_y + axis_height;
  int legend_x = x0;
  const std::pair<PhaseKind, const char*> entries[] = {
      {PhaseKind::Receive, "receiving"},
      {PhaseKind::Compute, "computing"},
      {PhaseKind::Send, "sending"},
      {PhaseKind::Idle, "idle"},
  };
  for (const auto& [kind, label] : entries) {
    out << "<rect x=\"" << legend_x << "\" y=\"" << legend_y
        << "\" width=\"14\" height=\"14\" fill=\"" << phase_color(kind) << "\"/>\n";
    out << "<text x=\"" << legend_x + 20 << "\" y=\"" << legend_y + 12 << "\">"
        << label << "</text>\n";
    legend_x += 110;
  }
  out << "</svg>\n";
  return out.str();
}

void write_svg_gantt(const std::string& path, const std::vector<GanttRow>& rows,
                     const SvgOptions& options) {
  std::ofstream file(path);
  LBS_CHECK_MSG(static_cast<bool>(file), "cannot open '" + path + "' for writing");
  file << render_svg_gantt(rows, options);
  LBS_CHECK_MSG(static_cast<bool>(file), "failed writing '" + path + "'");
}

}  // namespace lbs::support
