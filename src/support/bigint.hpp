// Arbitrary-precision signed integers.
//
// Backing store for the exact simplex (lp/exact_simplex.hpp): a 17x17
// exact pivot sequence needs ~50+ decimal digits, beyond __int128. This
// is a deliberately simple, fully-tested implementation: sign-magnitude
// over base-2^32 limbs, schoolbook multiplication, shift-subtract long
// division — plenty fast for LP tableaus of a few hundred entries.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace lbs::support {

class BigInt {
 public:
  BigInt() = default;  // zero
  BigInt(long long value);  // NOLINT(google-explicit-constructor)

  // Parses an optionally signed decimal string; throws lbs::Error on
  // malformed input.
  static BigInt from_string(std::string_view decimal);
  static BigInt from_int128(__int128 value);

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] int signum() const;

  [[nodiscard]] BigInt abs() const;
  BigInt operator-() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator/=(const BigInt& rhs);  // truncates toward zero
  BigInt& operator%=(const BigInt& rhs);  // sign follows the dividend

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) = default;
  friend std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs);

  // Quotient and remainder in one pass; remainder's sign follows `this`.
  // (Defined after the class: members of the enclosing, still-incomplete
  // type.)
  struct DivMod;
  [[nodiscard]] DivMod divmod(const BigInt& divisor) const;

  static BigInt gcd(BigInt a, BigInt b);

  // Closest double (may lose precision / overflow to inf for huge values).
  [[nodiscard]] double to_double() const;
  // Throws lbs::Error when the value does not fit.
  [[nodiscard]] long long to_int64() const;

  // Number of significant bits of the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

 private:
  void normalize();
  [[nodiscard]] static std::strong_ordering compare_magnitude(const BigInt& lhs,
                                                              const BigInt& rhs);
  static std::vector<std::uint32_t> add_magnitude(const std::vector<std::uint32_t>& a,
                                                  const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_magnitude(const std::vector<std::uint32_t>& a,
                                                  const std::vector<std::uint32_t>& b);

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  // little-endian base 2^32; empty = 0
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

std::ostream& operator<<(std::ostream& out, const BigInt& value);

}  // namespace lbs::support
