// Exact rational arithmetic over arbitrary-precision integers.
//
// The unlimited-precision sibling of support::Rational (which is capped
// at 128 bits and throws on overflow). Used where pivot sequences or
// accumulations genuinely exceed 128 bits — notably the exact simplex.
// Interface mirrors Rational so code can be written generically.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "support/bigint.hpp"
#include "support/rational.hpp"

namespace lbs::support {

class BigRational {
 public:
  BigRational() = default;
  BigRational(long long value);  // NOLINT(google-explicit-constructor)
  BigRational(BigInt num, BigInt den);  // reduces; throws on zero den

  static BigRational from_rational(const Rational& value);

  [[nodiscard]] const BigInt& num() const { return num_; }
  [[nodiscard]] const BigInt& den() const { return den_; }

  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_zero() const { return num_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return num_.is_negative(); }
  [[nodiscard]] bool is_integer() const { return den_ == BigInt(1); }

  [[nodiscard]] BigRational floor() const;
  [[nodiscard]] BigRational ceil() const;
  [[nodiscard]] BigRational round() const;  // halves away from zero
  [[nodiscard]] BigRational abs() const;
  [[nodiscard]] BigRational reciprocal() const;

  [[nodiscard]] long long to_int64() const;  // requires is_integer()

  BigRational operator-() const;
  BigRational& operator+=(const BigRational& rhs);
  BigRational& operator-=(const BigRational& rhs);
  BigRational& operator*=(const BigRational& rhs);
  BigRational& operator/=(const BigRational& rhs);

  friend BigRational operator+(BigRational lhs, const BigRational& rhs) { return lhs += rhs; }
  friend BigRational operator-(BigRational lhs, const BigRational& rhs) { return lhs -= rhs; }
  friend BigRational operator*(BigRational lhs, const BigRational& rhs) { return lhs *= rhs; }
  friend BigRational operator/(BigRational lhs, const BigRational& rhs) { return lhs /= rhs; }

  friend bool operator==(const BigRational& lhs, const BigRational& rhs) {
    return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  }
  friend std::strong_ordering operator<=>(const BigRational& lhs, const BigRational& rhs);

 private:
  void normalize();

  BigInt num_;          // reduced
  BigInt den_ = BigInt(1);  // > 0
};

std::ostream& operator<<(std::ostream& out, const BigRational& value);

}  // namespace lbs::support
