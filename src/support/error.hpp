// Error handling primitives shared by every lbs module.
//
// Policy: programmer errors (violated preconditions, broken invariants)
// throw lbs::Error; conditions that are data (e.g. "this LP is
// infeasible") are encoded in return types instead.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace lbs {

// Exception thrown on violated preconditions and broken invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raise_check_failure(const char* expr, const std::string& msg,
                                      const std::source_location& loc);
}  // namespace detail

// Checks a precondition/invariant; throws lbs::Error with location info on
// failure. Enabled in all build types: the algorithms in this library are
// cheap relative to the workloads they schedule, and silent corruption of a
// data distribution is far costlier than a branch.
#define LBS_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::lbs::detail::raise_check_failure(                             \
          #expr, std::string{}, std::source_location::current());     \
    }                                                                 \
  } while (false)

#define LBS_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::lbs::detail::raise_check_failure(                             \
          #expr, (msg), std::source_location::current());             \
    }                                                                 \
  } while (false)

}  // namespace lbs
