// Bounded multi-producer/multi-consumer queue with non-blocking admission.
//
// The planning service's backpressure primitive: producers (connection
// threads) try_push and get an immediate false when the queue is full —
// the caller turns that into a reject-with-retry-after response instead
// of letting latency grow without bound. Consumers block in pop /
// pop_batch until work arrives or the queue is closed.
//
// close() wakes every blocked consumer; pops then drain the remaining
// items before reporting emptiness, so no accepted work is lost on
// shutdown. After close(), try_push always returns false.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace lbs::support {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Admission: false when the queue is at capacity or closed; the item is
  // not consumed in that case.
  [[nodiscard]] bool try_push(const T& value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(value);
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained;
  // false means "closed and empty" (consumers should exit).
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Like pop, but claims up to `max` items in one critical section
  // (appended to `out`). Returns the number claimed; 0 means closed and
  // empty.
  [[nodiscard]] std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    std::size_t claimed = 0;
    while (claimed < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++claimed;
    }
    return claimed;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lbs::support
