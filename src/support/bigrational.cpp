#include "support/bigrational.hpp"

#include <ostream>

#include "support/error.hpp"

namespace lbs::support {

BigRational::BigRational(long long value) : num_(value), den_(1) {}

BigRational::BigRational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  LBS_CHECK_MSG(!den_.is_zero(), "rational with zero denominator");
  normalize();
}

BigRational BigRational::from_rational(const Rational& value) {
  return BigRational(BigInt::from_int128(value.num()), BigInt::from_int128(value.den()));
}

void BigRational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt divisor = BigInt::gcd(num_, den_);
  if (divisor != BigInt(1)) {
    num_ /= divisor;
    den_ /= divisor;
  }
}

double BigRational::to_double() const {
  return num_.to_double() / den_.to_double();
}

std::string BigRational::to_string() const {
  std::string result = num_.to_string();
  if (!is_integer()) {
    result.push_back('/');
    result += den_.to_string();
  }
  return result;
}

BigRational BigRational::floor() const {
  auto division = num_.divmod(den_);
  if (!division.remainder.is_zero() && num_.is_negative()) {
    division.quotient -= BigInt(1);
  }
  BigRational result;
  result.num_ = std::move(division.quotient);
  return result;
}

BigRational BigRational::ceil() const {
  auto division = num_.divmod(den_);
  if (!division.remainder.is_zero() && !num_.is_negative()) {
    division.quotient += BigInt(1);
  }
  BigRational result;
  result.num_ = std::move(division.quotient);
  return result;
}

BigRational BigRational::round() const {
  BigRational half(BigInt(1), BigInt(2));
  if (!num_.is_negative()) return (*this + half).floor();
  return (*this - half).ceil();
}

BigRational BigRational::abs() const {
  return is_negative() ? -*this : *this;
}

BigRational BigRational::reciprocal() const {
  LBS_CHECK_MSG(!is_zero(), "reciprocal of zero");
  return BigRational(den_, num_);
}

long long BigRational::to_int64() const {
  LBS_CHECK_MSG(is_integer(), "to_int64 on non-integer rational");
  return num_.to_int64();
}

BigRational BigRational::operator-() const {
  BigRational result = *this;
  result.num_ = -result.num_;
  return result;
}

BigRational& BigRational::operator+=(const BigRational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

BigRational& BigRational::operator-=(const BigRational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

BigRational& BigRational::operator*=(const BigRational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

BigRational& BigRational::operator/=(const BigRational& rhs) {
  LBS_CHECK_MSG(!rhs.is_zero(), "rational division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

std::strong_ordering operator<=>(const BigRational& lhs, const BigRational& rhs) {
  BigInt left = lhs.num_ * rhs.den_;
  BigInt right = rhs.num_ * lhs.den_;
  return left <=> right;
}

std::ostream& operator<<(std::ostream& out, const BigRational& value) {
  return out << value.to_string();
}

}  // namespace lbs::support
