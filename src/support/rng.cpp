#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace lbs::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t value, int shift) {
  return (value << shift) | (value >> (64 - shift));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LBS_CHECK(lo <= hi);
  auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = max() - max() % range;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform(double lo, double hi) {
  LBS_CHECK(lo <= hi);
  double unit = static_cast<double>(next() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  double u2 = uniform();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::exponential(double rate) {
  LBS_CHECK(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double probability) {
  LBS_CHECK(probability >= 0.0 && probability <= 1.0);
  return uniform() < probability;
}

Rng Rng::fork() {
  return Rng(next());
}

}  // namespace lbs::support
