// Consistent-hash ring with virtual nodes.
//
// The planner fleet routes every PlanKey to one of N replicas so their
// plan caches *partition* the key space instead of duplicating it. Two
// properties make that partition worth having, and both are this ring's
// contract:
//
//   Uniform spread.  Each node contributes `virtual_nodes` points whose
//   positions are a pure function of (node id, replica index) through a
//   splitmix64-style mixer, so with enough points per node every node
//   owns ~1/N of the 64-bit key circle. The property test bounds the
//   chi-square statistic of the observed spread.
//
//   Bounded remap.  Because point positions never depend on ring
//   membership, adding or removing one node moves ONLY the keys that
//   node owns (~1/N of them); every other key keeps its assignment.
//   A modulo table would remap (N-1)/N of the keys instead — and cold
//   every replica's cache on each membership change.
//
// Lookup walks clockwise from the key's hash to the first point;
// nodes_for() keeps walking and collects *distinct* nodes in order,
// which is the fleet's failover sequence: the second node is where a
// key lands while its home replica is down, deterministically, so even
// failover traffic stays cacheable.
//
// Not internally synchronized: membership changes are rare and callers
// (FleetClient) treat the ring as immutable after construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lbs::support {

class HashRing {
 public:
  // More virtual nodes -> flatter spread (stddev of a node's share is
  // ~1/(N*sqrt(virtual_nodes))) at O(total points) memory and
  // O(log points) lookup. 128 keeps the imbalance under ~10%.
  explicit HashRing(int virtual_nodes = 128);

  // Node ids must be unique and non-empty (the fleet uses the replica's
  // Endpoint::to_string()). Throws lbs::Error on duplicates.
  void add_node(const std::string& id);
  // Throws lbs::Error when the id is not a member.
  void remove_node(const std::string& id);

  [[nodiscard]] std::size_t node_count() const { return ids_.size(); }
  [[nodiscard]] const std::vector<std::string>& nodes() const { return ids_; }
  [[nodiscard]] int virtual_nodes() const { return virtual_nodes_; }

  // The node owning `key_hash` (the first point clockwise). Requires a
  // non-empty ring.
  [[nodiscard]] const std::string& node_for(std::uint64_t key_hash) const;

  // Up to `count` DISTINCT nodes in clockwise preference order starting
  // at the owner — the failover sequence for one key.
  [[nodiscard]] std::vector<const std::string*> nodes_for(
      std::uint64_t key_hash, std::size_t count) const;

  // Mixes a raw 64-bit key (e.g. a PlanKeyHash value) onto the ring's
  // circle. Exposed so tests and routing previews agree with routing.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t value);

 private:
  void rebuild();

  struct Point {
    std::uint64_t position;
    std::uint32_t node;  // index into ids_
  };

  int virtual_nodes_;
  std::vector<std::string> ids_;
  std::vector<Point> ring_;  // sorted by position
};

}  // namespace lbs::support
