#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"

namespace lbs::support {

namespace {
// Set while a thread is executing chunks for some pool, so reentrant
// for_range calls degrade to inline execution instead of deadlocking on
// the submit mutex.
thread_local bool t_inside_pool_job = false;
}  // namespace

ThreadPool::ThreadPool(int workers) {
  LBS_CHECK_MSG(workers >= 0, "negative worker count");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::run_chunks(Job& job) {
  bool was_inside = t_inside_pool_job;
  t_inside_pool_job = true;
  for (;;) {
    long long begin = job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.end) break;
    long long end = std::min(begin + job.grain, job.end);
    try {
      (*job.fn)(begin, end);
    } catch (...) {
      {
        std::lock_guard lock(mu_);
        if (!job.error) job.error = std::current_exception();
      }
      // Abort the remaining chunks: park the cursor at the end.
      job.next.store(job.end, std::memory_order_relaxed);
      break;
    }
  }
  t_inside_pool_job = was_inside;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_id_ != seen); });
    if (stop_) return;
    Job* job = job_;
    seen = job_id_;
    ++job->active;
    lock.unlock();
    run_chunks(*job);
    lock.lock();
    if (--job->active == 0) done_cv_.notify_all();
  }
}

void ThreadPool::for_range(long long begin, long long end, long long grain,
                           const std::function<void(long long, long long)>& fn) {
  LBS_CHECK_MSG(grain >= 1, "for_range grain must be >= 1");
  if (begin >= end) return;
  if (workers() == 0 || end - begin <= grain || t_inside_pool_job) {
    fn(begin, end);
    return;
  }

  std::lock_guard submit(submit_mu_);
  Job job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.fn = &fn;
  {
    std::lock_guard lock(mu_);
    job_ = &job;
    ++job_id_;
  }
  work_cv_.notify_all();
  run_chunks(job);
  std::unique_lock lock(mu_);
  job_ = nullptr;  // late wakers see no job and go back to sleep
  done_cv_.wait(lock, [&] { return job.active == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

int default_parallelism() {
  if (const char* env = std::getenv("LBS_PLANNER_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& shared_pool() {
  static ThreadPool* pool = new ThreadPool(default_parallelism() - 1);
  return *pool;
}

}  // namespace lbs::support
