// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through this generator so that every
// test, example, and benchmark is reproducible from a printed seed.
// Implementation: xoshiro256** (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>

namespace lbs::support {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  // Standard normal via Box–Muller (no cached spare; simple and stateless).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  // Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double probability);

  // A fresh generator whose seed is derived from this one; use to give
  // independent deterministic streams to sub-components.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lbs::support
