// A small persistent worker pool for data-parallel loops.
//
// The planner's dynamic programs are column-parallel: every cell of a
// column depends only on the previous column, so a column's index range
// can be partitioned across threads with no synchronization beyond the
// column barrier. ThreadPool provides exactly that shape — `for_range`
// hands out contiguous chunks of [begin, end) to the workers (the calling
// thread participates) until the range is exhausted, then returns.
//
// Determinism: for_range makes no promise about *which* thread runs which
// chunk, only that every index is visited exactly once. Callers that write
// each index's result to a distinct location (the DP pattern) therefore
// get bit-identical output regardless of thread count or scheduling.
//
// Jobs submitted from different threads serialize on an internal mutex; a
// for_range issued from inside a worker (reentrant use) runs inline on
// that worker instead of deadlocking.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace lbs::support {

class ThreadPool {
 public:
  // Spawns `workers` background threads (>= 0; the calling thread of each
  // for_range always participates, so total parallelism is workers + 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }
  // Parallelism of a for_range call: workers() + the calling thread.
  [[nodiscard]] int parallelism() const { return workers() + 1; }

  // Runs fn(chunk_begin, chunk_end) over disjoint chunks covering
  // [begin, end), each at most `grain` long, dynamically scheduled.
  // Blocks until the whole range is done. The first exception thrown by
  // fn aborts the remaining chunks and is rethrown here.
  void for_range(long long begin, long long end, long long grain,
                 const std::function<void(long long, long long)>& fn);

 private:
  struct Job {
    std::atomic<long long> next{0};
    long long end = 0;
    long long grain = 1;
    const std::function<void(long long, long long)>* fn = nullptr;
    int active = 0;                 // workers currently inside run_chunks
    std::exception_ptr error;       // first failure (guarded by pool mutex)
  };

  void worker_loop();
  void run_chunks(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mu_;                  // guards job_, job_id_, stop_, Job::active/error
  std::condition_variable work_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // submitter waits for active == 0
  std::mutex submit_mu_;           // serializes concurrent for_range calls
  Job* job_ = nullptr;
  std::uint64_t job_id_ = 0;
  bool stop_ = false;
};

// Process-wide parallelism knob: LBS_PLANNER_THREADS when set (>= 1),
// otherwise std::thread::hardware_concurrency(). Always >= 1.
int default_parallelism();

// Lazily-constructed process-wide pool with default_parallelism() - 1
// workers. Never destroyed before process exit.
ThreadPool& shared_pool();

}  // namespace lbs::support
