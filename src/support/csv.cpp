#include "support/csv.hpp"

#include <sstream>

namespace lbs::support {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> cells) {
  write_row(std::vector<std::string>(cells));
}

std::string CsvWriter::cell(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string CsvWriter::cell(long long value) {
  return std::to_string(value);
}

std::string csv_escape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace lbs::support
