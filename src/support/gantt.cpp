#include "support/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace lbs::support {

GanttChart::GanttChart(int width) : width_(width) {
  LBS_CHECK_MSG(width >= 10, "gantt axis too narrow");
}

void GanttChart::add_row(GanttRow row) {
  for (const auto& span : row.spans) {
    LBS_CHECK_MSG(span.end >= span.start, "gantt span with negative duration");
  }
  // Half-open [start, end): a zero-length span is no activity at all, so it
  // must not survive into the row (it would still stretch the time axis).
  std::erase_if(row.spans,
                [](const PhaseSpan& span) { return span.end <= span.start; });
  rows_.push_back(std::move(row));
}

char phase_char(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::Idle: return '.';
    case PhaseKind::Receive: return 'r';
    case PhaseKind::Send: return 's';
    case PhaseKind::Compute: return '#';
  }
  return '?';
}

std::string GanttChart::to_string() const {
  double max_end = 0.0;
  std::size_t label_width = 0;
  for (const auto& row : rows_) {
    label_width = std::max(label_width, row.label.size());
    for (const auto& span : row.spans) max_end = std::max(max_end, span.end);
  }
  if (max_end <= 0.0) max_end = 1.0;

  std::ostringstream out;
  double cell_duration = max_end / width_;
  for (const auto& row : rows_) {
    std::string cells(static_cast<std::size_t>(width_), '.');
    for (const auto& span : row.spans) {
      if (span.end <= span.start) continue;
      auto first = static_cast<int>(std::floor(span.start / cell_duration));
      auto last = static_cast<int>(std::ceil(span.end / cell_duration)) - 1;
      first = std::clamp(first, 0, width_ - 1);
      last = std::clamp(last, first, width_ - 1);
      for (int c = first; c <= last; ++c) {
        // Later spans win ties at cell boundaries; compute over receive over idle.
        cells[static_cast<std::size_t>(c)] = phase_char(span.kind);
      }
    }
    out << row.label << std::string(label_width - row.label.size(), ' ')
        << " |" << cells << "|\n";
  }

  // Scale line with start / end markers.
  out << std::string(label_width, ' ') << " +" << std::string(static_cast<std::size_t>(width_), '-')
      << "+\n";
  out << std::string(label_width, ' ') << " 0" << std::string(static_cast<std::size_t>(width_ - 1), ' ')
      << format_seconds(max_end) << '\n';
  out << "legend: '.'=idle  'r'=receiving  's'=sending  '#'=computing\n";
  return out.str();
}

}  // namespace lbs::support
