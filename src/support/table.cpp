#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace lbs::support {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == ',' || c == '%' || c == ' ')) {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(cell.front())) ||
         cell.front() == '-' || cell.front() == '+' || cell.front() == '.';
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LBS_CHECK_MSG(!headers_.empty(), "table with no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  LBS_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      std::size_t pad = widths[c] - row[c].size();
      bool right = align_right && looks_numeric(row[c]);
      if (right) out << std::string(pad, ' ');
      out << row[c];
      if (!right && c + 1 != row.size()) out << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

void Table::print(std::ostream& out) const {
  out << to_string();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  if (std::abs(seconds) < 1e-3) {
    out.precision(1);
    out << seconds * 1e6 << " us";
  } else if (std::abs(seconds) < 1.0) {
    out.precision(1);
    out << seconds * 1e3 << " ms";
  } else if (std::abs(seconds) < 120.0) {
    out.precision(1);
    out << seconds << " s";
  } else if (std::abs(seconds) < 7200.0) {
    out.precision(1);
    out << seconds / 60.0 << " min";
  } else if (std::abs(seconds) < 2.0 * 86400.0) {
    out.precision(1);
    out << seconds / 3600.0 << " h";
  } else {
    out.precision(1);
    out << seconds / 86400.0 << " days";
  }
  return out.str();
}

std::string format_count(long long count) {
  std::string digits = std::to_string(count < 0 ? -count : count);
  std::string grouped;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      grouped.push_back(',');
      since_sep = 0;
    }
    grouped.push_back(*it);
    ++since_sep;
  }
  if (count < 0) grouped.push_back('-');
  return {grouped.rbegin(), grouped.rend()};
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

}  // namespace lbs::support
