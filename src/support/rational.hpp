// Exact rational arithmetic on 128-bit integers with overflow detection.
//
// The paper's Section 4 reasons about *rational* optimal solutions
// (simultaneous endings, the D(P1..Pp) closed form, the rounding scheme of
// Section 3.3). Tests and the affine chain solver use this type so that
// statements like "all processors finish at exactly the same date" can be
// asserted without a floating-point epsilon.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace lbs::support {

// A reduced fraction num/den with den > 0. Arithmetic throws lbs::Error on
// 128-bit overflow rather than wrapping; the library never needs values
// anywhere near the 2^127 range, so an overflow always indicates a bug in
// the caller (e.g. an unreduced accumulation loop).
class Rational {
 public:
  using Int = __int128;

  constexpr Rational() = default;
  Rational(long long value);  // NOLINT(google-explicit-constructor)
  Rational(long long num, long long den);

  // Exact conversion of an IEEE double (every finite double is a rational
  // with a power-of-two denominator). Throws if the double is not finite or
  // the exact value does not fit.
  static Rational from_double(double value);

  // Best rational approximation of `value` with denominator <= max_den
  // (continued-fraction convergents). Unlike from_double, the result has a
  // small denominator, which keeps downstream exact arithmetic (e.g. the
  // exact simplex) within 128 bits. max_den >= 1.
  static Rational approximate(double value, long long max_den);

  [[nodiscard]] Int num() const { return num_; }
  [[nodiscard]] Int den() const { return den_; }

  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_negative() const { return num_ < 0; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }

  // Largest integer <= value / smallest integer >= value.
  [[nodiscard]] Rational floor() const;
  [[nodiscard]] Rational ceil() const;
  // Nearest integer; halves round away from zero.
  [[nodiscard]] Rational round() const;
  [[nodiscard]] Rational abs() const;
  [[nodiscard]] Rational reciprocal() const;

  [[nodiscard]] long long to_int64() const;  // requires is_integer()

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& lhs, const Rational& rhs) {
    return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs);

 private:
  Rational(Int num, Int den, bool reduce);
  void normalize();

  Int num_ = 0;
  Int den_ = 1;
};

std::ostream& operator<<(std::ostream& out, const Rational& value);

}  // namespace lbs::support
