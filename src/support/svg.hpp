// SVG rendering of Gantt timelines.
//
// The figure-producing counterpart of the ASCII gantt: benches and
// examples can write a publication-style timeline (Figure 1/2/3/4 look)
// to a .svg file with no external dependencies.
#pragma once

#include <string>
#include <vector>

#include "support/gantt.hpp"

namespace lbs::support {

struct SvgOptions {
  int width_px = 900;
  int row_height_px = 22;
  int label_width_px = 110;
  std::string title;
};

// Renders rows (same data as GanttChart) to a standalone SVG document.
// Phase colors: receive = blue, compute = orange, send = green,
// idle = background. Includes a time axis and a legend.
std::string render_svg_gantt(const std::vector<GanttRow>& rows,
                             const SvgOptions& options = {});

// Convenience: render and write to `path`; throws lbs::Error on I/O failure.
void write_svg_gantt(const std::string& path, const std::vector<GanttRow>& rows,
                     const SvgOptions& options = {});

}  // namespace lbs::support
