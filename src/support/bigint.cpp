#include "support/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "support/error.hpp"

namespace lbs::support {

namespace {

constexpr std::uint64_t kBase = 1ULL << 32;

}  // namespace

BigInt::BigInt(long long value) {
  negative_ = value < 0;
  // Avoid UB on LLONG_MIN by going through unsigned.
  auto magnitude = negative_ ? ~static_cast<std::uint64_t>(value) + 1
                             : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffULL));
    magnitude >>= 32;
  }
  normalize();
}

BigInt BigInt::from_int128(__int128 value) {
  BigInt result;
  result.negative_ = value < 0;
  auto magnitude = result.negative_ ? ~static_cast<unsigned __int128>(value) + 1
                                    : static_cast<unsigned __int128>(value);
  while (magnitude != 0) {
    result.limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffULL));
    magnitude >>= 32;
  }
  result.normalize();
  return result;
}

BigInt BigInt::from_string(std::string_view decimal) {
  LBS_CHECK_MSG(!decimal.empty(), "empty integer string");
  bool negative = false;
  std::size_t pos = 0;
  if (decimal[0] == '+' || decimal[0] == '-') {
    negative = decimal[0] == '-';
    pos = 1;
  }
  LBS_CHECK_MSG(pos < decimal.size(), "integer string with no digits");

  BigInt result;
  for (; pos < decimal.size(); ++pos) {
    char c = decimal[pos];
    LBS_CHECK_MSG(c >= '0' && c <= '9', "bad digit in integer string");
    // result = result * 10 + digit (in-place short operations).
    std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
    for (auto& limb : result.limbs_) {
      std::uint64_t value = static_cast<std::uint64_t>(limb) * 10 + carry;
      limb = static_cast<std::uint32_t>(value & 0xffffffffULL);
      carry = value >> 32;
    }
    while (carry != 0) {
      result.limbs_.push_back(static_cast<std::uint32_t>(carry & 0xffffffffULL));
      carry >>= 32;
    }
  }
  result.negative_ = negative;
  result.normalize();
  return result;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated short division by 1e9.
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  while (!magnitude.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = magnitude.size(); i-- > 0;) {
      std::uint64_t value = (remainder << 32) | magnitude[i];
      magnitude[i] = static_cast<std::uint32_t>(value / 1000000000ULL);
      remainder = value % 1000000000ULL;
    }
    while (!magnitude.empty() && magnitude.back() == 0) magnitude.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

int BigInt::signum() const {
  if (is_zero()) return 0;
  return negative_ ? -1 : 1;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

std::strong_ordering BigInt::compare_magnitude(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.limbs_.size() != rhs.limbs_.size()) {
    return lhs.limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = lhs.limbs_.size(); i-- > 0;) {
    if (lhs.limbs_[i] != rhs.limbs_[i]) return lhs.limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.negative_ != rhs.negative_) {
    return lhs.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  auto magnitude = BigInt::compare_magnitude(lhs, rhs);
  return lhs.negative_ ? (0 <=> magnitude) : magnitude;
}

std::vector<std::uint32_t> BigInt::add_magnitude(const std::vector<std::uint32_t>& a,
                                                 const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    result.push_back(static_cast<std::uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<std::uint32_t>(carry));
  return result;
}

std::vector<std::uint32_t> BigInt::sub_magnitude(const std::vector<std::uint32_t>& a,
                                                 const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<std::uint32_t>(diff));
  }
  LBS_CHECK_MSG(borrow == 0, "sub_magnitude underflow (|a| < |b|)");
  return result;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else {
    auto cmp = compare_magnitude(*this, rhs);
    if (cmp == std::strong_ordering::equal) {
      limbs_.clear();
      negative_ = false;
      return *this;
    }
    if (cmp == std::strong_ordering::greater) {
      limbs_ = sub_magnitude(limbs_, rhs.limbs_);
    } else {
      limbs_ = sub_magnitude(rhs.limbs_, limbs_);
      negative_ = rhs.negative_;
    }
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  return *this += -rhs;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  std::vector<std::uint32_t> product(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t value = a * rhs.limbs_[j] + product[i + j] + carry;
      product[i + j] = static_cast<std::uint32_t>(value & 0xffffffffULL);
      carry = value >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      std::uint64_t value = product[k] + carry;
      product[k] = static_cast<std::uint32_t>(value & 0xffffffffULL);
      carry = value >> 32;
      ++k;
    }
  }
  limbs_ = std::move(product);
  negative_ = negative_ != rhs.negative_;
  normalize();
  return *this;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  LBS_CHECK_MSG(!divisor.is_zero(), "BigInt division by zero");
  DivMod result;

  auto magnitude_cmp = compare_magnitude(*this, divisor);
  if (magnitude_cmp == std::strong_ordering::less) {
    result.remainder = *this;
    return result;
  }

  if (divisor.limbs_.size() == 1) {
    // Short division.
    std::uint64_t d = divisor.limbs_[0];
    std::vector<std::uint32_t> quotient(limbs_.size(), 0);
    std::uint64_t remainder = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      std::uint64_t value = (remainder << 32) | limbs_[i];
      quotient[i] = static_cast<std::uint32_t>(value / d);
      remainder = value % d;
    }
    result.quotient.limbs_ = std::move(quotient);
    result.quotient.normalize();
    result.remainder = BigInt(static_cast<long long>(remainder));
  } else {
    // Binary long division on magnitudes: O(bits * limbs) — fine at LP
    // tableau sizes.
    BigInt remainder;
    BigInt quotient;
    std::size_t bits = bit_length();
    quotient.limbs_.assign((bits + 31) / 32, 0);
    BigInt divisor_magnitude = divisor.abs();
    for (std::size_t bit = bits; bit-- > 0;) {
      // remainder = remainder * 2 + bit(this, bit)
      std::uint32_t carry =
          (limbs_[bit / 32] >> (bit % 32)) & 1U;
      for (auto& limb : remainder.limbs_) {
        std::uint32_t top = limb >> 31;
        limb = (limb << 1) | carry;
        carry = top;
      }
      if (carry != 0) remainder.limbs_.push_back(carry);
      remainder.normalize();
      if (compare_magnitude(remainder, divisor_magnitude) !=
          std::strong_ordering::less) {
        remainder.limbs_ = sub_magnitude(remainder.limbs_, divisor_magnitude.limbs_);
        remainder.normalize();
        quotient.limbs_[bit / 32] |= 1U << (bit % 32);
      }
    }
    quotient.normalize();
    result.quotient = std::move(quotient);
    result.remainder = std::move(remainder);
  }

  // Signs: C++ semantics — quotient truncates toward zero, remainder
  // follows the dividend.
  result.quotient.negative_ = !result.quotient.is_zero() && (negative_ != divisor.negative_);
  result.remainder.negative_ = !result.remainder.is_zero() && negative_;
  return result;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = divmod(rhs).quotient;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = divmod(rhs).remainder;
  return *this;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a.divmod(b).remainder;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

double BigInt::to_double() const {
  if (is_zero()) return 0.0;
  // Combine the top limbs into a 64-bit mantissa and scale.
  double value = 0.0;
  std::size_t top = limbs_.size();
  std::size_t used = std::min<std::size_t>(top, 3);
  for (std::size_t i = 0; i < used; ++i) {
    value = value * static_cast<double>(kBase) +
            static_cast<double>(limbs_[top - 1 - i]);
  }
  double scaled = std::ldexp(value, static_cast<int>(32 * (top - used)));
  return negative_ ? -scaled : scaled;
}

long long BigInt::to_int64() const {
  LBS_CHECK_MSG(limbs_.size() <= 2, "BigInt exceeds 64 bits");
  std::uint64_t magnitude = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    magnitude = (magnitude << 32) | limbs_[i];
  }
  if (negative_) {
    LBS_CHECK_MSG(magnitude <= static_cast<std::uint64_t>(
                                   std::numeric_limits<long long>::max()) + 1,
                  "BigInt exceeds 64 bits");
    return static_cast<long long>(~magnitude + 1);
  }
  LBS_CHECK_MSG(magnitude <= static_cast<std::uint64_t>(
                                 std::numeric_limits<long long>::max()),
                "BigInt exceeds 64 bits");
  return static_cast<long long>(magnitude);
}

std::size_t BigInt::bit_length() const {
  if (is_zero()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::ostream& operator<<(std::ostream& out, const BigInt& value) {
  return out << value.to_string();
}

}  // namespace lbs::support
