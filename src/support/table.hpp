// Plain-text table rendering for benches and examples.
//
// The bench harness reproduces the paper's tables and figure data as
// aligned text tables (plus CSV, see csv.hpp). This keeps bench binaries
// dependency-free and their output diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lbs::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  // Renders with a header rule and right-aligned numeric-looking cells.
  [[nodiscard]] std::string to_string() const;

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers used throughout benches.
std::string format_double(double value, int precision = 3);
std::string format_seconds(double seconds);      // "853.2 s" / "6.1 min" / "2.1 days"
std::string format_count(long long count);       // thousands separators
std::string format_percent(double fraction, int precision = 1);

}  // namespace lbs::support
