// Small statistics toolkit: summaries and least-squares fits.
//
// Used by model calibration (fitting α/β from timing samples, the way the
// paper's Table 1 was produced from "a series of benchmarks") and by the
// bench harness to report spreads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lbs::support {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double sum = 0.0;

  // (max - min) / max; the paper reports finish-time spread this way
  // ("a maximum difference in finish times of 6% of the total duration").
  [[nodiscard]] double relative_spread() const;
};

// Summarizes values; requires a non-empty range.
Summary summarize(std::span<const double> values);

// Ordinary least squares fit of y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double at(double x) const { return intercept + slope * x; }
};

// Requires at least two samples with distinct x values.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

// Fit y = slope * x through the origin (used for the paper's *linear* cost
// model where Tcomm(i,n) = β·n exactly).
double fit_proportional(std::span<const double> xs, std::span<const double> ys);

// Quantile with linear interpolation; q in [0, 1]. Copies and sorts.
double quantile(std::span<const double> values, double q);

}  // namespace lbs::support
