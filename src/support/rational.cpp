#include "support/rational.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "support/error.hpp"

namespace lbs::support {

namespace {

using Int = Rational::Int;

constexpr Int kIntMax = (static_cast<Int>(1) << 126) - 1 + (static_cast<Int>(1) << 126);
constexpr Int kIntMin = -kIntMax - 1;

Int abs128(Int value) {
  LBS_CHECK_MSG(value != kIntMin, "rational overflow in abs");
  return value < 0 ? -value : value;
}

Int gcd128(Int lhs, Int rhs) {
  lhs = abs128(lhs);
  rhs = abs128(rhs);
  while (rhs != 0) {
    Int tmp = lhs % rhs;
    lhs = rhs;
    rhs = tmp;
  }
  return lhs;
}

Int checked_mul(Int lhs, Int rhs) {
  if (lhs == 0 || rhs == 0) return 0;
  Int result = 0;
  bool overflow = __builtin_mul_overflow(lhs, rhs, &result);
  LBS_CHECK_MSG(!overflow, "rational overflow in multiplication");
  return result;
}

Int checked_add(Int lhs, Int rhs) {
  Int result = 0;
  bool overflow = __builtin_add_overflow(lhs, rhs, &result);
  LBS_CHECK_MSG(!overflow, "rational overflow in addition");
  return result;
}

std::string int128_to_string(Int value) {
  if (value == 0) return "0";
  bool negative = value < 0;
  // Peel digits from the absolute value; handle kIntMin via unsigned.
  unsigned __int128 magnitude =
      negative ? static_cast<unsigned __int128>(-(value + 1)) + 1
               : static_cast<unsigned __int128>(value);
  std::string digits;
  while (magnitude != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(magnitude % 10)));
    magnitude /= 10;
  }
  if (negative) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

}  // namespace

Rational::Rational(long long value) : num_(value), den_(1) {}

Rational::Rational(long long num, long long den) : num_(num), den_(den) {
  LBS_CHECK_MSG(den != 0, "rational with zero denominator");
  normalize();
}

Rational::Rational(Int num, Int den, bool reduce) : num_(num), den_(den) {
  LBS_CHECK_MSG(den != 0, "rational with zero denominator");
  if (reduce) normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  Int divisor = gcd128(num_, den_);
  num_ /= divisor;
  den_ /= divisor;
}

Rational Rational::from_double(double value) {
  LBS_CHECK_MSG(std::isfinite(value), "rational from non-finite double");
  if (value == 0.0) return Rational{};
  int exponent = 0;
  double mantissa = std::frexp(value, &exponent);  // value = mantissa * 2^exponent
  // 53 bits of mantissa: scale to an integer.
  auto scaled = static_cast<long long>(std::ldexp(mantissa, 53));
  exponent -= 53;
  Rational result{scaled, 1};
  // Multiply or divide by 2^exponent in chunks that cannot overflow per step.
  while (exponent > 0) {
    int step = exponent > 62 ? 62 : exponent;
    result *= Rational(static_cast<Int>(1) << step, 1, false);
    exponent -= step;
  }
  while (exponent < 0) {
    int step = -exponent > 62 ? 62 : -exponent;
    result /= Rational(static_cast<Int>(1) << step, 1, false);
    exponent += step;
  }
  return result;
}

Rational Rational::approximate(double value, long long max_den) {
  LBS_CHECK_MSG(std::isfinite(value), "approximating a non-finite double");
  LBS_CHECK_MSG(max_den >= 1, "max_den must be at least 1");
  bool negative = value < 0.0;
  double x = negative ? -value : value;

  // Continued-fraction convergents h_k / k_k; stop when the denominator
  // would exceed max_den and keep the last admissible convergent.
  long long h_prev = 1, h = static_cast<long long>(std::floor(x));
  long long k_prev = 0, k = 1;
  double fraction = x - std::floor(x);
  for (int iter = 0; iter < 64 && fraction > 1e-18; ++iter) {
    double inverted = 1.0 / fraction;
    double floor_inv = std::floor(inverted);
    // Guard against overflow of the term itself.
    if (floor_inv > 9e17) break;
    auto a = static_cast<long long>(floor_inv);
    long long k_next = a * k + k_prev;
    if (k_next > max_den || k_next < 0) break;  // < 0: overflow
    long long h_next = a * h + h_prev;
    h_prev = h;
    h = h_next;
    k_prev = k;
    k = k_next;
    fraction = inverted - floor_inv;
  }
  Rational result(h, k);
  return negative ? -result : result;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  std::string result = int128_to_string(num_);
  if (den_ != 1) {
    result.push_back('/');
    result += int128_to_string(den_);
  }
  return result;
}

Rational Rational::floor() const {
  Int quotient = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) quotient -= 1;
  return Rational(quotient, 1, false);
}

Rational Rational::ceil() const {
  Int quotient = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) quotient += 1;
  return Rational(quotient, 1, false);
}

Rational Rational::round() const {
  // floor(x + 1/2) for positive halves-away, mirrored for negatives.
  Rational half{1, 2};
  if (num_ >= 0) return (*this + half).floor();
  return (*this - half).ceil();
}

Rational Rational::abs() const {
  return num_ < 0 ? -*this : *this;
}

Rational Rational::reciprocal() const {
  LBS_CHECK_MSG(num_ != 0, "reciprocal of zero");
  return Rational(den_, num_, true);
}

long long Rational::to_int64() const {
  LBS_CHECK_MSG(is_integer(), "to_int64 on non-integer rational");
  LBS_CHECK_MSG(num_ <= std::numeric_limits<long long>::max() &&
                    num_ >= std::numeric_limits<long long>::min(),
                "rational integer exceeds 64 bits");
  return static_cast<long long>(num_);
}

Rational Rational::operator-() const {
  return Rational(checked_mul(num_, -1), den_, false);
}

Rational& Rational::operator+=(const Rational& rhs) {
  // Reduce cross terms by gcd of denominators first to delay overflow.
  Int divisor = gcd128(den_, rhs.den_);
  Int lhs_scale = rhs.den_ / divisor;
  Int rhs_scale = den_ / divisor;
  Int num = checked_add(checked_mul(num_, lhs_scale), checked_mul(rhs.num_, rhs_scale));
  Int den = checked_mul(den_, lhs_scale);
  *this = Rational(num, den, true);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  return *this += -rhs;
}

Rational& Rational::operator*=(const Rational& rhs) {
  // Cross-reduce before multiplying to keep magnitudes small.
  Int g1 = gcd128(num_, rhs.den_);
  Int g2 = gcd128(rhs.num_, den_);
  Int num = checked_mul(num_ / g1, rhs.num_ / g2);
  Int den = checked_mul(den_ / g2, rhs.den_ / g1);
  *this = Rational(num, den, false);
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  LBS_CHECK_MSG(!rhs.is_zero(), "rational division by zero");
  return *this *= rhs.reciprocal();
}

std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs) {
  // Compare lhs.num * rhs.den <=> rhs.num * lhs.den with overflow checks.
  Int left = checked_mul(lhs.num_, rhs.den_);
  Int right = checked_mul(rhs.num_, lhs.den_);
  if (left < right) return std::strong_ordering::less;
  if (left > right) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& out, const Rational& value) {
  return out << value.to_string();
}

}  // namespace lbs::support
