// ASCII Gantt-chart renderer.
//
// Reproduces the visual structure of the paper's Figure 1 (idle /
// receiving / computing phases per processor, the "stair effect") in plain
// text so bench binaries can show timelines without a plotting stack.
#pragma once

#include <string>
#include <vector>

namespace lbs::support {

enum class PhaseKind { Idle, Receive, Send, Compute };

// One contiguous activity interval on a row's timeline; times in seconds.
// Intervals are half-open [start, end) — the convention shared with
// gridsim::Timeline::gantt_rows — so end == start means "no activity":
// add_row drops such spans rather than keeping degenerate intervals.
struct PhaseSpan {
  double start = 0.0;
  double end = 0.0;
  PhaseKind kind = PhaseKind::Idle;
};

struct GanttRow {
  std::string label;
  std::vector<PhaseSpan> spans;  // need not cover the whole axis; gaps render as idle
};

class GanttChart {
 public:
  // width: number of character cells used for the time axis.
  explicit GanttChart(int width = 72);

  // Throws on spans with end < start; drops zero-length spans (a
  // zero-byte send occupies no [start, end) interval).
  void add_row(GanttRow row);

  // Renders all rows against a common [0, max_end] axis, with a scale line
  // and a legend. Rows render in insertion order.
  [[nodiscard]] std::string to_string() const;

 private:
  int width_;
  std::vector<GanttRow> rows_;
};

char phase_char(PhaseKind kind);

}  // namespace lbs::support
