#include "lp/exact_simplex.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::lp {

using support::BigRational;
using support::Rational;

void ExactProblem::minimize(std::vector<Rational> coeffs) {
  objective = std::move(coeffs);
  num_vars = static_cast<int>(objective.size());
}

void ExactProblem::add(std::vector<Rational> coeffs, Relation relation,
                       Rational rhs) {
  LBS_CHECK_MSG(static_cast<int>(coeffs.size()) == num_vars,
                "constraint width mismatch (set the objective first)");
  constraints.push_back(ExactConstraint{std::move(coeffs), relation, std::move(rhs)});
}

namespace {

// Exact canonical-form tableau; mirrors lp/simplex.cpp with Rational
// arithmetic and exact comparisons (no epsilons anywhere).
class ExactTableau {
 public:
  explicit ExactTableau(const ExactProblem& problem) : n_(problem.num_vars) {
    int m = static_cast<int>(problem.constraints.size());
    int slack_count = 0;
    for (const auto& c : problem.constraints) {
      if (c.relation != Relation::Equal) ++slack_count;
    }
    slack_base_ = n_;
    artificial_base_ = n_ + slack_count;
    total_ = artificial_base_ + m;

    rows_.assign(static_cast<std::size_t>(m),
                 std::vector<BigRational>(static_cast<std::size_t>(total_) + 1));
    basis_.assign(static_cast<std::size_t>(m), -1);

    int slack = slack_base_;
    for (int r = 0; r < m; ++r) {
      const auto& c = problem.constraints[static_cast<std::size_t>(r)];
      auto& row = rows_[static_cast<std::size_t>(r)];
      bool flip = c.rhs.is_negative();
      Relation relation = c.relation;
      if (flip) {
        if (relation == Relation::LessEq) relation = Relation::GreaterEq;
        else if (relation == Relation::GreaterEq) relation = Relation::LessEq;
      }
      for (int j = 0; j < n_; ++j) {
        const Rational& coeff = c.coeffs[static_cast<std::size_t>(j)];
        row[static_cast<std::size_t>(j)] =
            BigRational::from_rational(flip ? -coeff : coeff);
      }
      row[static_cast<std::size_t>(total_)] = BigRational::from_rational(flip ? -c.rhs : c.rhs);

      if (relation == Relation::LessEq) {
        row[static_cast<std::size_t>(slack)] = BigRational(1);
        basis_[static_cast<std::size_t>(r)] = slack;
        ++slack;
      } else {
        if (relation == Relation::GreaterEq) {
          row[static_cast<std::size_t>(slack)] = BigRational(-1);
          ++slack;
        }
        int art = artificial_base_ + r;
        row[static_cast<std::size_t>(art)] = BigRational(1);
        basis_[static_cast<std::size_t>(r)] = art;
      }
    }
  }

  bool optimize(const std::vector<BigRational>& objective, const std::vector<bool>& allow) {
    int m = static_cast<int>(rows_.size());
    for (;;) {
      std::vector<BigRational> reduced = objective;
      for (int r = 0; r < m; ++r) {
        const BigRational& cb = objective[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
        if (cb.is_zero()) continue;
        const auto& row = rows_[static_cast<std::size_t>(r)];
        for (int j = 0; j < total_; ++j) {
          if (!row[static_cast<std::size_t>(j)].is_zero()) {
            reduced[static_cast<std::size_t>(j)] -= cb * row[static_cast<std::size_t>(j)];
          }
        }
      }

      int entering = -1;
      for (int j = 0; j < total_; ++j) {
        if (allow[static_cast<std::size_t>(j)] && reduced[static_cast<std::size_t>(j)].is_negative()) {
          entering = j;
          break;  // Bland: smallest index
        }
      }
      if (entering < 0) return true;

      int leaving = -1;
      BigRational best_ratio;
      for (int r = 0; r < m; ++r) {
        const BigRational& a = rows_[static_cast<std::size_t>(r)][static_cast<std::size_t>(entering)];
        if (!(a > BigRational(0))) continue;
        BigRational ratio = rows_[static_cast<std::size_t>(r)].back() / a;
        if (leaving < 0 || ratio < best_ratio ||
            (ratio == best_ratio &&
             basis_[static_cast<std::size_t>(r)] < basis_[static_cast<std::size_t>(leaving)])) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving < 0) return false;  // unbounded

      pivot(leaving, entering);
    }
  }

  [[nodiscard]] BigRational objective_value(const std::vector<BigRational>& objective) const {
    BigRational value;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      const BigRational& cb = objective[static_cast<std::size_t>(basis_[r])];
      if (!cb.is_zero()) value += cb * rows_[r].back();
    }
    return value;
  }

  void expel_artificials() {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (basis_[r] < artificial_base_) continue;
      for (int j = 0; j < artificial_base_; ++j) {
        if (!rows_[r][static_cast<std::size_t>(j)].is_zero()) {
          pivot(static_cast<int>(r), j);
          break;
        }
      }
    }
  }

  [[nodiscard]] std::vector<BigRational> extract(int num_vars) const {
    std::vector<BigRational> x(static_cast<std::size_t>(num_vars));
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (basis_[r] < num_vars) x[static_cast<std::size_t>(basis_[r])] = rows_[r].back();
    }
    return x;
  }

  [[nodiscard]] int total_columns() const { return total_; }
  [[nodiscard]] int artificial_base() const { return artificial_base_; }

 private:
  void pivot(int leaving_row, int entering_col) {
    auto& prow = rows_[static_cast<std::size_t>(leaving_row)];
    BigRational scale = prow[static_cast<std::size_t>(entering_col)];
    LBS_CHECK_MSG(!scale.is_zero(), "zero pivot element");
    for (auto& value : prow) value /= scale;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (static_cast<int>(r) == leaving_row) continue;
      BigRational factor = rows_[r][static_cast<std::size_t>(entering_col)];
      if (factor.is_zero()) continue;
      for (std::size_t j = 0; j < rows_[r].size(); ++j) {
        if (!prow[j].is_zero()) rows_[r][j] -= factor * prow[j];
      }
      rows_[r][static_cast<std::size_t>(entering_col)] = BigRational(0);
    }
    basis_[static_cast<std::size_t>(leaving_row)] = entering_col;
  }

  int n_;
  int slack_base_ = 0;
  int artificial_base_ = 0;
  int total_ = 0;
  std::vector<std::vector<BigRational>> rows_;
  std::vector<int> basis_;
};

}  // namespace

ExactSolution solve_exact(const ExactProblem& problem) {
  LBS_CHECK_MSG(problem.num_vars > 0, "LP with no variables");
  LBS_CHECK_MSG(static_cast<int>(problem.objective.size()) == problem.num_vars,
                "objective width mismatch");

  ExactTableau tableau(problem);
  int total = tableau.total_columns();
  int artificial_base = tableau.artificial_base();

  std::vector<BigRational> phase1(static_cast<std::size_t>(total));
  for (int j = artificial_base; j < total; ++j) phase1[static_cast<std::size_t>(j)] = BigRational(1);
  std::vector<bool> allow_all(static_cast<std::size_t>(total), true);
  bool bounded = tableau.optimize(phase1, allow_all);
  LBS_CHECK_MSG(bounded, "phase-1 LP cannot be unbounded");

  ExactSolution solution;
  if (!tableau.objective_value(phase1).is_zero()) {
    solution.status = SolveStatus::Infeasible;
    return solution;
  }
  tableau.expel_artificials();

  std::vector<BigRational> phase2(static_cast<std::size_t>(total));
  for (int j = 0; j < problem.num_vars; ++j) {
    phase2[static_cast<std::size_t>(j)] =
        BigRational::from_rational(problem.objective[static_cast<std::size_t>(j)]);
  }
  std::vector<bool> allow(static_cast<std::size_t>(total), true);
  for (int j = artificial_base; j < total; ++j) allow[static_cast<std::size_t>(j)] = false;
  if (!tableau.optimize(phase2, allow)) {
    solution.status = SolveStatus::Unbounded;
    return solution;
  }

  solution.status = SolveStatus::Optimal;
  solution.x = tableau.extract(problem.num_vars);
  solution.objective = tableau.objective_value(phase2);
  return solution;
}

}  // namespace lbs::lp
