// Exact two-phase simplex over rationals.
//
// The paper's heuristic solved the scatter LP *in rationals* (via pipMP,
// a parametric integer programming tool) — the rounding-scheme guarantee
// (Eq. 4) is stated for the exact rational optimum. This solver is the
// faithful counterpart of lp/simplex.hpp with no floating-point
// tolerances: Bland's rule over exact lbs::support::Rational arithmetic,
// so optimality and infeasibility are decided, not estimated.
//
// Inputs are 128-bit support::Rational (problem data is small by
// construction — feed measured doubles through Rational::approximate());
// all pivot arithmetic and the solution run on arbitrary-precision
// support::BigRational, so nothing overflows regardless of the pivot
// sequence.
#pragma once

#include <vector>

#include "lp/simplex.hpp"
#include "support/bigrational.hpp"
#include "support/rational.hpp"

namespace lbs::lp {

struct ExactConstraint {
  std::vector<support::Rational> coeffs;
  Relation relation = Relation::LessEq;
  support::Rational rhs;
};

struct ExactProblem {
  int num_vars = 0;
  std::vector<support::Rational> objective;  // minimized
  std::vector<ExactConstraint> constraints;

  void minimize(std::vector<support::Rational> coeffs);
  void add(std::vector<support::Rational> coeffs, Relation relation,
           support::Rational rhs);
};

struct ExactSolution {
  SolveStatus status = SolveStatus::Infeasible;
  std::vector<support::BigRational> x;
  support::BigRational objective;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::Optimal; }
};

ExactSolution solve_exact(const ExactProblem& problem);

}  // namespace lbs::lp
