#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace lbs::lp {

void Problem::minimize(std::vector<double> coeffs) {
  objective = std::move(coeffs);
  num_vars = static_cast<int>(objective.size());
}

void Problem::add(std::vector<double> coeffs, Relation relation, double rhs) {
  LBS_CHECK_MSG(static_cast<int>(coeffs.size()) == num_vars,
                "constraint width mismatch (set the objective first)");
  constraints.push_back(Constraint{std::move(coeffs), relation, rhs});
}

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
  }
  return "?";
}

namespace {

// Dense tableau in canonical form: rows_ holds the m constraint rows
// (columns = all variables, last entry = rhs); basis columns are identity.
class Tableau {
 public:
  Tableau(const Problem& problem, double tolerance)
      : eps_(tolerance), n_(problem.num_vars) {
    int m = static_cast<int>(problem.constraints.size());

    // Column layout: [structural | slack/surplus | artificial].
    // Count slacks first so column indices are stable.
    int slack_count = 0;
    for (const auto& c : problem.constraints) {
      if (c.relation != Relation::Equal) ++slack_count;
    }
    slack_base_ = n_;
    artificial_base_ = n_ + slack_count;
    total_ = artificial_base_ + m;  // at most one artificial per row

    rows_.assign(static_cast<std::size_t>(m),
                 std::vector<double>(static_cast<std::size_t>(total_) + 1, 0.0));
    basis_.assign(static_cast<std::size_t>(m), -1);
    artificial_used_.assign(static_cast<std::size_t>(m), false);

    int slack = slack_base_;
    for (int r = 0; r < m; ++r) {
      const auto& c = problem.constraints[static_cast<std::size_t>(r)];
      auto& row = rows_[static_cast<std::size_t>(r)];
      double sign = 1.0;
      Relation relation = c.relation;
      if (c.rhs < 0.0) {  // normalize rhs >= 0
        sign = -1.0;
        if (relation == Relation::LessEq) relation = Relation::GreaterEq;
        else if (relation == Relation::GreaterEq) relation = Relation::LessEq;
      }
      for (int j = 0; j < n_; ++j) {
        row[static_cast<std::size_t>(j)] = sign * c.coeffs[static_cast<std::size_t>(j)];
      }
      row[static_cast<std::size_t>(total_)] = sign * c.rhs;

      if (relation == Relation::LessEq) {
        row[static_cast<std::size_t>(slack)] = 1.0;
        basis_[static_cast<std::size_t>(r)] = slack;
        ++slack;
      } else {
        if (relation == Relation::GreaterEq) {
          row[static_cast<std::size_t>(slack)] = -1.0;  // surplus
          ++slack;
        }
        int art = artificial_base_ + r;
        row[static_cast<std::size_t>(art)] = 1.0;
        basis_[static_cast<std::size_t>(r)] = art;
        artificial_used_[static_cast<std::size_t>(r)] = true;
      }
    }
  }

  // Minimizes the given objective (size total_, artificials included) over
  // the current basis; columns with allow[j] == false never enter.
  // Returns false when unbounded.
  bool optimize(const std::vector<double>& objective, const std::vector<bool>& allow) {
    int m = static_cast<int>(rows_.size());
    for (;;) {
      // Reduced costs: d_j = c_j - sum_r c_basis[r] * row[r][j].
      std::vector<double> reduced = objective;
      for (int r = 0; r < m; ++r) {
        double cb = objective[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
        if (cb == 0.0) continue;
        const auto& row = rows_[static_cast<std::size_t>(r)];
        for (int j = 0; j < total_; ++j) {
          reduced[static_cast<std::size_t>(j)] -= cb * row[static_cast<std::size_t>(j)];
        }
      }

      // Bland's rule: smallest-index improving column.
      int entering = -1;
      for (int j = 0; j < total_; ++j) {
        if (!allow[static_cast<std::size_t>(j)]) continue;
        if (reduced[static_cast<std::size_t>(j)] < -eps_) {
          entering = j;
          break;
        }
      }
      if (entering < 0) return true;  // optimal

      // Ratio test; Bland tie-break on smallest basis variable index.
      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < m; ++r) {
        double a = rows_[static_cast<std::size_t>(r)][static_cast<std::size_t>(entering)];
        if (a <= eps_) continue;
        double ratio = rows_[static_cast<std::size_t>(r)][static_cast<std::size_t>(total_)] / a;
        if (ratio < best_ratio - eps_ ||
            (ratio < best_ratio + eps_ && leaving >= 0 &&
             basis_[static_cast<std::size_t>(r)] < basis_[static_cast<std::size_t>(leaving)])) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving < 0) return false;  // unbounded

      pivot(leaving, entering);
    }
  }

  // Objective value of the current basic solution under `objective`.
  [[nodiscard]] double objective_value(const std::vector<double>& objective) const {
    double value = 0.0;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      value += objective[static_cast<std::size_t>(basis_[r])] * rows_[r].back();
    }
    return value;
  }

  // After phase 1: pivots any artificial still in the basis out on a
  // non-artificial column; drops rows that are entirely redundant.
  void expel_artificials() {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (basis_[r] < artificial_base_) continue;
      int pivot_col = -1;
      for (int j = 0; j < artificial_base_; ++j) {
        if (std::abs(rows_[r][static_cast<std::size_t>(j)]) > eps_) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) {
        pivot(static_cast<int>(r), pivot_col);
      }
      // else: redundant row; its artificial stays basic at level ~0, which
      // is harmless because artificials are never allowed to re-enter and
      // carry zero cost in phase 2.
    }
  }

  [[nodiscard]] std::vector<double> extract(int num_vars) const {
    std::vector<double> x(static_cast<std::size_t>(num_vars), 0.0);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (basis_[r] < num_vars) {
        x[static_cast<std::size_t>(basis_[r])] = rows_[r].back();
      }
    }
    return x;
  }

  [[nodiscard]] int total_columns() const { return total_; }
  [[nodiscard]] int artificial_base() const { return artificial_base_; }

 private:
  void pivot(int leaving_row, int entering_col) {
    auto& prow = rows_[static_cast<std::size_t>(leaving_row)];
    double scale = prow[static_cast<std::size_t>(entering_col)];
    LBS_CHECK_MSG(std::abs(scale) > eps_ / 10.0, "degenerate pivot element");
    for (auto& value : prow) value /= scale;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (static_cast<int>(r) == leaving_row) continue;
      double factor = rows_[r][static_cast<std::size_t>(entering_col)];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < rows_[r].size(); ++j) {
        rows_[r][j] -= factor * prow[j];
      }
      rows_[r][static_cast<std::size_t>(entering_col)] = 0.0;  // cancel roundoff
    }
    basis_[static_cast<std::size_t>(leaving_row)] = entering_col;
  }

  double eps_;
  int n_;
  int slack_base_ = 0;
  int artificial_base_ = 0;
  int total_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int> basis_;
  std::vector<bool> artificial_used_;
};

}  // namespace

Solution solve(const Problem& problem, double tolerance) {
  LBS_CHECK_MSG(problem.num_vars > 0, "LP with no variables");
  LBS_CHECK_MSG(static_cast<int>(problem.objective.size()) == problem.num_vars,
                "objective width mismatch");

  Tableau tableau(problem, tolerance);
  int total = tableau.total_columns();
  int artificial_base = tableau.artificial_base();

  // Phase 1: minimize the sum of artificials.
  std::vector<double> phase1(static_cast<std::size_t>(total), 0.0);
  for (int j = artificial_base; j < total; ++j) phase1[static_cast<std::size_t>(j)] = 1.0;
  std::vector<bool> allow_all(static_cast<std::size_t>(total), true);
  bool bounded = tableau.optimize(phase1, allow_all);
  LBS_CHECK_MSG(bounded, "phase-1 LP cannot be unbounded");

  Solution solution;
  // Infeasibility tolerance scales with the rhs magnitude via the tableau.
  if (tableau.objective_value(phase1) > 1e-7) {
    solution.status = SolveStatus::Infeasible;
    return solution;
  }
  tableau.expel_artificials();

  // Phase 2: original objective; artificials locked out.
  std::vector<double> phase2(static_cast<std::size_t>(total), 0.0);
  for (int j = 0; j < problem.num_vars; ++j) {
    phase2[static_cast<std::size_t>(j)] = problem.objective[static_cast<std::size_t>(j)];
  }
  std::vector<bool> allow(static_cast<std::size_t>(total), true);
  for (int j = artificial_base; j < total; ++j) allow[static_cast<std::size_t>(j)] = false;
  if (!tableau.optimize(phase2, allow)) {
    solution.status = SolveStatus::Unbounded;
    return solution;
  }

  solution.status = SolveStatus::Optimal;
  solution.x = tableau.extract(problem.num_vars);
  solution.objective = tableau.objective_value(phase2);
  return solution;
}

}  // namespace lbs::lp
