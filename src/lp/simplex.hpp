// Dense two-phase primal simplex solver.
//
// The paper's guaranteed heuristic (Section 3.3) codes the scatter problem
// as a linear program and solves it in rationals (the authors used pipMP).
// Our substitute is this small dense solver: the scatter LP has p+1
// variables and p+1 constraints (p <= a few dozen processors), so a dense
// tableau with Bland's anti-cycling rule is exact enough (double precision)
// and runs in microseconds.
//
// Problem form: minimize cᵀx subject to row constraints (<=, >=, =) and
// x >= 0.
#pragma once

#include <string>
#include <vector>

namespace lbs::lp {

enum class Relation { LessEq, GreaterEq, Equal };

struct Constraint {
  std::vector<double> coeffs;  // one per variable
  Relation relation = Relation::LessEq;
  double rhs = 0.0;
};

struct Problem {
  int num_vars = 0;
  std::vector<double> objective;  // minimized; one per variable
  std::vector<Constraint> constraints;

  // Convenience builders.
  void minimize(std::vector<double> coeffs);
  void add(std::vector<double> coeffs, Relation relation, double rhs);
};

enum class SolveStatus { Optimal, Infeasible, Unbounded };

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  std::vector<double> x;    // engaged iff status == Optimal
  double objective = 0.0;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::Optimal; }
};

std::string to_string(SolveStatus status);

// Solves with Bland's rule (guaranteed termination). Tolerance is the
// absolute feasibility/optimality epsilon on the (well-scaled) tableau.
Solution solve(const Problem& problem, double tolerance = 1e-9);

}  // namespace lbs::lp
