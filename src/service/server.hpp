// lbsd — the asynchronous batched planning service.
//
// The paper's central move is that a load-balanced scatter's distribution
// n_1..n_p is computed *statically* from the cost model, which makes
// planning a cacheable, batchable function of (platform costs, n,
// algorithm) — exactly the shape of a service. Server turns the planner
// engine into one long-running daemon that many clients share:
//
//   connection threads ──┐                        ┌── DP worker pool
//     decode request     │   bounded solve queue  │   (support::ThreadPool)
//     probe shard cache ─┼──► PendingSolve ───────┼─► plan_scatter
//     coalesce in-flight │   (backpressure)       │   fill cache, fan out
//                        └────────────────────────┘   replies to waiters
//
// The request path, in order:
//   1. admission — implausible requests (too many processors, too many
//      items) get an immediate Error; nothing hostile reaches the DP.
//   2. cache probe — core::ShardedPlanCache, N lock-striped LRU shards
//      keyed by the same PlanKey the planner uses. A hit answers without
//      touching the queue.
//   3. coalescing — an in-flight map keyed by PlanKey. If an identical
//      solve is already queued or running, the request attaches as a
//      waiter: k concurrent identical requests cost exactly one dp.solve.
//   4. backpressure — new unique solves enter a bounded queue
//      (support::BoundedQueue). When it is full the request is Rejected
//      with a retry_after_ms hint instead of growing the queue without
//      bound.
//   5. batching — one dispatcher claims up to max_batch pending solves at
//      a time and fans them across the DP worker pool; independent plans
//      compute in parallel, each filling the cache and answering every
//      waiter attached to its key.
//
// Observability (docs/observability.md): service.request spans (receipt
// to reply, outcome in arg1/arg2), service.queue spans (time a solve
// waited), service.batch spans (size in arg0), plus service.* counters
// and latency/queue-depth histograms in obs::Metrics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sharded_plan_cache.hpp"
#include "service/membership.hpp"
#include "service/protocol.hpp"
#include "service/snapshot.hpp"
#include "service/socket.hpp"
#include "support/bounded_queue.hpp"
#include "support/thread_pool.hpp"

namespace lbs::obs {
class Counter;
class Metrics;
class Tracer;
}

namespace lbs::service {

struct ServerOptions {
  // Filesystem path of the Unix-domain listening socket. Legacy/simple
  // form — ignored when `endpoint` is set. One of the two is required.
  std::string socket_path;

  // Where to listen: a unix path or a TCP host:port (Endpoint::tcp with
  // port 0 lets the kernel pick; Server::endpoint() reports the bound
  // port after start()). Takes precedence over socket_path.
  Endpoint endpoint;

  // Sharded plan cache geometry (core::ShardedPlanCache).
  int cache_shards = 8;
  std::size_t cache_capacity_per_shard = 128;

  // DP worker pool: how many solves can run concurrently. 0 means
  // support::default_parallelism() (LBS_PLANNER_THREADS / hardware).
  int dp_workers = 0;
  // Threads *inside* each DP solve. The default 1 keeps individual solves
  // serial and spends all parallelism across independent requests — the
  // right trade for throughput; raise it only for latency-critical huge
  // single plans.
  int dp_threads_per_solve = 1;

  // Backpressure: at most this many unique solves queued (in-flight
  // waiters attach for free). When full, requests are Rejected with
  // `retry_after_ms` as the client's retry hint.
  std::size_t max_queue = 256;
  std::uint32_t retry_after_ms = 50;

  // Batching: solves the dispatcher claims per queue pass.
  int max_batch = 16;

  // Admission control: requests beyond these bounds are answered with an
  // Error response before any planning work happens.
  int max_processors = 4096;
  long long max_items = 1LL << 40;

  // Fault-injection knob (tests, chaos drills): sleep this long inside
  // each solve before planning, widening the coalescing window
  // deterministically. 0 in production.
  int solve_delay_ms = 0;

  // Persistence (service/snapshot.hpp). warm_start_path: read this
  // snapshot at start() and replay it into the cache; a missing or
  // corrupt file is logged + counted (service.snapshot.rejected) and the
  // server cold-starts — never crashes. snapshot_path: where the periodic
  // writer and the final on-drain snapshot atomically persist the cache;
  // empty disables persistence. snapshot_interval_ms = 0 keeps only the
  // on-drain snapshot (no periodic thread).
  std::string warm_start_path;
  std::string snapshot_path;
  std::uint32_t snapshot_interval_ms = 0;

  // Upper bound on one reply write. A stalled or dead client can sink a
  // reply slowly, but it cannot wedge the dispatcher: past this deadline
  // the reply is abandoned and the connection is dropped.
  std::uint32_t reply_timeout_ms = 5000;

  // Elastic membership (service/membership.hpp). membership_path: a view
  // file read at start() and, when membership_poll_ms > 0, watched by
  // mtime so an operator edit propagates without a restart — the same
  // convergence path as a MembershipUpdate frame. handoff_timeout_ms
  // bounds each snapshot-range pull from a peer during a reshard; a slow
  // or dead donor costs one timeout and a counted failure, never a hang.
  std::string membership_path;
  std::uint32_t membership_poll_ms = 200;
  std::uint32_t handoff_timeout_ms = 5000;

  // Observability. Null tracer falls back to obs::global_tracer() (and
  // tracing is off when that is null too); null metrics falls back to
  // obs::global_metrics().
  obs::Tracer* tracer = nullptr;
  obs::Metrics* metrics = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and spawns the accept loop + dispatcher. Throws
  // lbs::Error when the socket cannot be bound.
  void start();

  // Stops accepting, drains the queue (every accepted solve is answered),
  // joins all threads, and removes the socket file. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return started_ && !stop_.load(); }

  // Cooperative shutdown signal (what a Shutdown message triggers): wakes
  // wait_until_stop_requested so the owner — lbsd's main — can call
  // stop() from outside the connection threads.
  void request_stop();
  [[nodiscard]] bool stop_requested() const;
  // Returns true when stop was requested within `timeout_ms` (poll this
  // from a main loop that also watches process signals).
  bool wait_until_stop_requested_for(int timeout_ms);

  [[nodiscard]] const ServerOptions& options() const { return options_; }
  // The resolved listening address. For a TCP endpoint requested with
  // port 0 this carries the kernel-assigned port once start() returns —
  // the address fleet peers must dial.
  [[nodiscard]] const Endpoint& endpoint() const { return options_.endpoint; }
  [[nodiscard]] core::ShardedPlanCache& cache() { return cache_; }

  // Monotonic totals since start; `requests` counts plan requests only.
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t solved = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
    std::uint64_t connections = 0;
    std::uint64_t membership_updates = 0;  // views adopted (epoch advanced)
    std::uint64_t wrong_epoch = 0;         // plan requests redirected
    std::uint64_t handoff_entries = 0;     // warm-start entries pulled in
  };
  [[nodiscard]] Counters counters() const;

  // The membership view this replica currently routes by (epoch 0 until
  // one is installed). adopt_view applies the single convergence rule —
  // newer epoch wins — and returns whether it won. When it did and
  // `allow_pull` is set, the replica first pulls the snapshot entries it
  // now owns from the right donors (every serving peer when this replica
  // just became route-eligible; each newly-draining member otherwise),
  // warm-starting its partition BEFORE the view is published, so a
  // request routed under the new ring finds the cache already hot.
  [[nodiscard]] MembershipView membership_view() const;
  bool adopt_view(const MembershipView& update, bool allow_pull);

  // The StatsResponse body: {"service": ..., "cache": ..., "metrics": ...}.
  [[nodiscard]] std::string stats_json() const;

  // Exports the cache and atomically writes it to options().snapshot_path
  // (requires a non-empty path). Safe while serving: export holds each
  // shard lock briefly, the file write happens outside every lock. Throws
  // lbs::Error on I/O failure — the periodic writer catches and counts.
  SnapshotStats snapshot_now();

 private:
  struct Connection {
    int fd = -1;
    std::uint32_t send_timeout_ms = 0;  // 0: no deadline
    std::mutex write_mu;  // one frame writer at a time; also guards close

    bool send(const std::vector<std::uint8_t>& payload);
    void close();
  };
  struct Waiter {
    std::shared_ptr<Connection> connection;
    std::uint64_t request_id = 0;
    bool coalesced = false;
    double received_at = 0.0;  // obs::wall_now() at intake
  };
  struct PendingSolve {
    core::PlanKey key;
    model::Platform platform;
    long long items = 0;
    core::Algorithm algorithm = core::Algorithm::Auto;
    double enqueued_at = 0.0;
    std::size_t depth_at_enqueue = 0;
    std::vector<Waiter> waiters;  // guarded by Server::inflight_mu_
  };
  using PendingPtr = std::shared_ptr<PendingSolve>;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> connection);
  void dispatch_loop();
  void snapshot_loop();
  void membership_watch_loop();
  std::size_t pull_partition(const MembershipView& view, const Endpoint& donor);
  [[nodiscard]] std::vector<SnapshotEntry> entries_owned_by(
      const MembershipView& view, const std::string& owner) const;
  void warm_start();
  void record_snapshot_span(double start, const SnapshotStats& stats,
                            bool restore) const;
  void handle_message(const std::shared_ptr<Connection>& connection,
                      Message&& message);
  void handle_plan(const std::shared_ptr<Connection>& connection,
                   PlanRequest&& request);
  void solve_one(PendingSolve& pending);
  void respond_plan(const Waiter& waiter, PlanResponse response);
  [[nodiscard]] obs::Tracer* tracer() const;

  ServerOptions options_;
  core::ShardedPlanCache cache_;
  obs::Metrics* metrics_ = nullptr;
  support::ThreadPool pool_;
  support::BoundedQueue<PendingPtr> queue_;

  std::mutex inflight_mu_;
  std::unordered_map<core::PlanKey, PendingPtr, core::PlanKeyHash> inflight_;

  // Current view behind a shared_ptr so the per-request read is a lock +
  // pointer copy, not a member-vector copy. adopt_mu_ serializes
  // adoption (including the pre-publish handoff pulls); view_mu_ only
  // guards the pointer swap/read.
  mutable std::mutex view_mu_;
  std::shared_ptr<const MembershipView> view_ =
      std::make_shared<const MembershipView>();
  std::mutex adopt_mu_;

  int listen_fd_ = -1;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread snapshot_thread_;
  std::thread membership_thread_;
  std::mutex connections_mu_;
  std::vector<std::thread> connection_threads_;
  // Every accepted connection, kept open through the drain so replies to
  // in-flight solves still have a live fd; stop() closes them after the
  // dispatcher finishes. Guarded by connections_mu_.
  std::vector<std::shared_ptr<Connection>> open_connections_;
  std::mutex snapshot_write_mu_;  // one snapshot writer at a time

  mutable std::mutex stop_request_mu_;
  std::condition_variable stop_request_cv_;
  bool stop_requested_ = false;

  std::mutex snapshot_wake_mu_;
  std::condition_variable snapshot_wake_cv_;
  bool snapshot_stop_ = false;  // guarded by snapshot_wake_mu_

  std::mutex membership_wake_mu_;
  std::condition_variable membership_wake_cv_;
  bool membership_stop_ = false;  // guarded by membership_wake_mu_

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> solved_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> membership_updates_{0};
  std::atomic<std::uint64_t> wrong_epoch_{0};
  std::atomic<std::uint64_t> handoff_entries_{0};
};

}  // namespace lbs::service
