#include "service/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <unistd.h>

#include "service/protocol.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {
constexpr std::size_t kHeaderBytes = 24;
}  // namespace

void encode_snapshot_entry(WireWriter& out, const SnapshotEntry& entry) {
  const core::PlanKey& key = entry.first;
  const core::ScatterPlan& plan = entry.second;
  out.put_u32(static_cast<std::uint32_t>(key.costs.size()));
  for (std::uint64_t fingerprint : key.costs) out.put_u64(fingerprint);
  out.put_i64(key.items);
  out.put_u8(static_cast<std::uint8_t>(key.algorithm));

  out.put_u8(static_cast<std::uint8_t>(plan.algorithm_used));
  out.put_f64(plan.predicted_makespan);
  out.put_i64(plan.dp_cells_evaluated);
  out.put_u32(static_cast<std::uint32_t>(plan.dp_threads));
  out.put_u8(plan.has_optimality_bound ? 1 : 0);
  out.put_f64(plan.optimality_gap);
  out.put_u32(static_cast<std::uint32_t>(plan.distribution.counts.size()));
  for (long long count : plan.distribution.counts) out.put_i64(count);
  out.put_u32(static_cast<std::uint32_t>(plan.predicted_finish.size()));
  for (double finish : plan.predicted_finish) out.put_f64(finish);
}

SnapshotEntry decode_snapshot_entry(WireReader& in) {
  SnapshotEntry entry;
  core::PlanKey& key = entry.first;
  core::ScatterPlan& plan = entry.second;

  std::uint32_t fingerprints = in.read_u32();
  LBS_CHECK_MSG(fingerprints <= kMaxSnapshotEntries,
                "snapshot: implausible fingerprint count");
  key.costs.reserve(fingerprints);
  for (std::uint32_t i = 0; i < fingerprints; ++i) key.costs.push_back(in.read_u64());
  key.items = in.read_i64();
  std::uint8_t requested = in.read_u8();
  LBS_CHECK_MSG(requested <= static_cast<std::uint8_t>(core::Algorithm::Uniform),
                "snapshot: unknown key algorithm");
  key.algorithm = static_cast<core::Algorithm>(requested);

  std::uint8_t used = in.read_u8();
  LBS_CHECK_MSG(used <= static_cast<std::uint8_t>(core::Algorithm::Uniform),
                "snapshot: unknown plan algorithm");
  plan.algorithm_used = static_cast<core::Algorithm>(used);
  plan.predicted_makespan = in.read_f64();
  plan.dp_cells_evaluated = in.read_i64();
  plan.dp_threads = static_cast<int>(in.read_u32());
  plan.has_optimality_bound = in.read_u8() != 0;
  plan.optimality_gap = in.read_f64();

  std::uint32_t counts = in.read_u32();
  LBS_CHECK_MSG(counts <= kMaxSnapshotEntries, "snapshot: implausible count vector");
  plan.distribution.counts.reserve(counts);
  for (std::uint32_t i = 0; i < counts; ++i) {
    plan.distribution.counts.push_back(in.read_i64());
  }
  plan.displacements = plan.distribution.displacements();

  std::uint32_t finishes = in.read_u32();
  LBS_CHECK_MSG(finishes <= kMaxSnapshotEntries,
                "snapshot: implausible finish vector");
  plan.predicted_finish.reserve(finishes);
  for (std::uint32_t i = 0; i < finishes; ++i) {
    plan.predicted_finish.push_back(in.read_f64());
  }
  return entry;
}

namespace {

std::vector<std::uint8_t> encode_header(std::uint32_t entry_count,
                                        const std::vector<std::uint8_t>& payload) {
  WireWriter out;
  out.put_u64(kSnapshotMagic);
  out.put_u32(kSnapshotVersion);
  out.put_u32(entry_count);
  out.put_u32(static_cast<std::uint32_t>(payload.size()));
  out.put_u32(support::crc32(payload));
  return out.take();
}

}  // namespace

SnapshotStats write_snapshot(const std::string& path,
                             const std::vector<SnapshotEntry>& entries) {
  LBS_CHECK_MSG(!path.empty(), "snapshot: empty path");
  LBS_CHECK_MSG(entries.size() <= kMaxSnapshotEntries,
                "snapshot: too many entries to persist");

  WireWriter body;
  for (const SnapshotEntry& entry : entries) encode_snapshot_entry(body, entry);
  std::vector<std::uint8_t> payload = body.take();
  LBS_CHECK_MSG(payload.size() <= kMaxSnapshotPayloadBytes,
                "snapshot: payload exceeds size bound");
  std::vector<std::uint8_t> header =
      encode_header(static_cast<std::uint32_t>(entries.size()), payload);

  // Write-to-temp + rename: readers only ever see the old file or the new
  // one, and a crash mid-write leaves the target untouched.
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw lbs::Error("snapshot: cannot open " + tmp + " for writing");
    }
    out.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      out.close();
      ::unlink(tmp.c_str());
      throw lbs::Error("snapshot: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    throw lbs::Error("snapshot: rename " + tmp + " -> " + path + ": " +
                     std::strerror(saved));
  }
  return SnapshotStats{entries.size(), header.size() + payload.size()};
}

std::vector<SnapshotEntry> read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw lbs::Error("snapshot: cannot open " + path);
  }
  std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  LBS_CHECK_MSG(raw.size() >= kHeaderBytes, "snapshot: file shorter than header");

  WireReader header(raw.data(), kHeaderBytes);
  LBS_CHECK_MSG(header.read_u64() == kSnapshotMagic, "snapshot: bad magic");
  std::uint32_t version = header.read_u32();
  LBS_CHECK_MSG(version == kSnapshotVersion,
                "snapshot: version " + std::to_string(version) +
                    " does not match " + std::to_string(kSnapshotVersion));
  std::uint32_t entry_count = header.read_u32();
  LBS_CHECK_MSG(entry_count <= kMaxSnapshotEntries,
                "snapshot: implausible entry count");
  std::uint32_t payload_bytes = header.read_u32();
  std::uint32_t expected_crc = header.read_u32();
  LBS_CHECK_MSG(raw.size() == kHeaderBytes + payload_bytes,
                "snapshot: truncated or oversized payload");
  LBS_CHECK_MSG(support::crc32(raw.data() + kHeaderBytes, payload_bytes) ==
                    expected_crc,
                "snapshot: payload checksum mismatch");

  WireReader body(raw.data() + kHeaderBytes, payload_bytes);
  std::vector<SnapshotEntry> entries;
  entries.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    entries.push_back(decode_snapshot_entry(body));
  }
  body.expect_end();
  return entries;
}

}  // namespace lbs::service
