#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "core/planner.hpp"
#include "obs/metrics.hpp"
#include "service/socket.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {

PlanResponse disconnected_response(std::uint64_t id) {
  PlanResponse response;
  response.id = id;
  response.status = PlanStatus::Disconnected;
  response.message = "connection to lbsd lost before the reply arrived";
  return response;
}

PlanResponse timeout_response(std::uint64_t id) {
  PlanResponse response;
  response.id = id;
  response.status = PlanStatus::Timeout;
  response.message = "request deadline expired before the reply arrived";
  return response;
}

Message dead_control(std::uint64_t id, PlanResponse body) {
  Message dead;
  dead.type = MessageType::PlanResponse;
  dead.id = id;
  dead.plan_response = std::move(body);
  return dead;
}

std::chrono::steady_clock::time_point plan_deadline(std::uint32_t timeout_ms) {
  if (timeout_ms == 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
}

std::uint64_t derive_jitter_seed(const void* self) {
  // Mix the client's address with the steady clock: two clients in one
  // process differ by address, two processes by clock. Reproducible runs
  // set ClientOptions::jitter_seed explicitly instead.
  std::uint64_t seed = reinterpret_cast<std::uintptr_t>(self);
  seed ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  seed ^= static_cast<std::uint64_t>(::getpid()) << 32;
  return seed != 0 ? seed : 0x9e3779b97f4a7c15ULL;
}

}  // namespace

std::uint32_t backoff_with_jitter(std::uint32_t hint_ms, int attempt,
                                  std::uint32_t base_ms, std::uint32_t cap_ms,
                                  support::Rng& rng) {
  std::uint64_t base = std::max<std::uint64_t>(std::max(hint_ms, base_ms), 1);
  std::uint64_t cap = std::max<std::uint64_t>(cap_ms, 1);
  // Saturating exponential: base << attempt, pinned at the cap so a long
  // outage cannot overflow into a zero (or an hour-long) sleep.
  for (int i = 0; i < attempt && base < cap; ++i) base <<= 1;
  base = std::min(base, cap);
  // ±50% jitter: uniform over [b/2, 3b/2], then re-capped. Without this,
  // every client rejected by the same full queue sleeps the same hint and
  // they all come back in lockstep — a retry storm with a metronome.
  std::uint64_t lo = std::max<std::uint64_t>(base / 2, 1);
  std::uint64_t hi = base + base / 2;
  std::uint64_t jittered = static_cast<std::uint64_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
  return static_cast<std::uint32_t>(std::min(jittered, cap));
}

Client::Client(const std::string& endpoint_spec)
    : Client(ClientOptions{.endpoint = Endpoint::parse(endpoint_spec)}) {}

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::global_metrics()),
      rng_(options_.jitter_seed != 0 ? options_.jitter_seed
                                     : derive_jitter_seed(this)) {
  if (!options_.endpoint.valid()) {
    LBS_CHECK_MSG(!options_.socket_path.empty(),
                  "service client needs a socket path or an endpoint");
    options_.endpoint = Endpoint::unix_path(options_.socket_path);
  }
  LBS_CHECK_MSG(options_.breaker_threshold >= 0,
                "breaker_threshold must be >= 0 (0 disables)");
  fd_ = connect_endpoint(options_.endpoint);
  if (fd_ < 0) {
    throw lbs::Error("service client: no server listening at " +
                     options_.endpoint.to_string());
  }
  reader_ = std::thread([this] { reader_loop(); });
  sweeper_ = std::thread([this] { sweeper_loop(); });
}

Client::~Client() { close(); }

std::future<PlanResponse> Client::plan_async(const model::Platform& platform,
                                             long long items,
                                             core::Algorithm algorithm,
                                             std::optional<std::uint32_t> timeout_ms) {
  std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  TimePoint deadline =
      plan_deadline(timeout_ms.value_or(options_.request_timeout_ms));

  std::promise<PlanResponse> promise;
  std::future<PlanResponse> future = promise.get_future();
  if (disconnected_.load(std::memory_order_acquire)) {
    promise.set_value(disconnected_response(id));
    return future;
  }

  PlanRequest request;
  request.id = id;
  request.algorithm = algorithm;
  request.items = items;
  request.epoch = epoch_.load(std::memory_order_relaxed);
  request.platform = platform;
  std::vector<std::uint8_t> payload = encode_plan_request(request);

  // Register the promise *before* sending: the reply can race the return
  // from send_payload.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_plans_.emplace(id, PendingPlan{std::move(promise), deadline});
  }
  if (deadline != TimePoint::max()) sweeper_cv_.notify_all();

  if (!send_payload(payload, deadline)) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_plans_.find(id);
    if (it != pending_plans_.end()) {
      // Distinguish "the socket died" from "the deadline expired while
      // the send was still blocked" — the latter is a Timeout.
      bool late = deadline != TimePoint::max() &&
                  std::chrono::steady_clock::now() >= deadline;
      it->second.promise.set_value(late ? timeout_response(id)
                                        : disconnected_response(id));
      pending_plans_.erase(it);
    }
  }
  return future;
}

PlanResponse Client::plan(const model::Platform& platform, long long items,
                          core::Algorithm algorithm,
                          std::optional<std::uint32_t> timeout_ms) {
  PlanResponse response = plan_async(platform, items, algorithm, timeout_ms).get();
  record_outcome(response.status);
  return response;
}

PlanResponse Client::plan_with_retry(const model::Platform& platform,
                                     long long items, core::Algorithm algorithm,
                                     int max_retries) {
  PlanResponse response;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (!breaker_allows()) {
      metrics_->counter("service.client.breaker.fast_fails").add();
      if (options_.local_fallback) {
        return local_plan(platform, items, algorithm, "circuit breaker open");
      }
      response = PlanResponse{};
      response.status = PlanStatus::BreakerOpen;
      response.message = "circuit breaker open: failing fast";
      return response;
    }
    if (!connected()) {
      // Kill-restart drills: the daemon may be back under the same
      // socket path. A failed dial counts as this attempt's transport
      // failure and falls through to the backoff below.
      (void)try_reconnect();
    }

    response = plan(platform, items, algorithm);
    if (response.status == PlanStatus::Ok ||
        response.status == PlanStatus::Error ||
        response.status == PlanStatus::WrongEpoch) {
      // WrongEpoch is conclusive here: this replica will keep redirecting
      // until the caller re-rings from current_view and routes elsewhere.
      return response;
    }

    // Rejected (backpressure) or Disconnected/Timeout (transport): both
    // retry after a jittered, capped, exponentially growing sleep. The
    // server's retry_after_ms hint seeds the schedule when present.
    if (attempt == max_retries) break;
    std::uint32_t wait_ms;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      wait_ms = backoff_with_jitter(response.retry_after_ms, attempt,
                                    options_.backoff_base_ms,
                                    options_.backoff_cap_ms, rng_);
    }
    metrics_->counter("service.client.retry.attempts").add();
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }

  // Budget exhausted. Transport-style failures can still degrade to the
  // in-process planner; a persistent Rejected is reported as-is (the
  // server is alive, just saturated — local planning would hide that).
  if (options_.local_fallback && (response.status == PlanStatus::Disconnected ||
                                  response.status == PlanStatus::Timeout)) {
    return local_plan(platform, items, algorithm, "retries exhausted");
  }
  return response;
}

PlanResponse Client::local_plan(const model::Platform& platform, long long items,
                                core::Algorithm algorithm,
                                const std::string& reason) {
  metrics_->counter("service.client.fallbacks").add();
  PlanResponse response;
  try {
    core::PlannerOptions planner_options;
    planner_options.algorithm = algorithm;
    planner_options.dp.threads = options_.fallback_dp_threads;
    core::ScatterPlan plan = core::plan_scatter(platform, items, planner_options);
    response.status = PlanStatus::Ok;
    response.counts = std::move(plan.distribution.counts);
    response.predicted_makespan = plan.predicted_makespan;
    response.algorithm_used = plan.algorithm_used;
    response.dp_cells_evaluated = plan.dp_cells_evaluated;
    response.has_optimality_bound = plan.has_optimality_bound;
    response.optimality_gap = plan.optimality_gap;
    response.local_fallback = true;
    response.message = reason;
  } catch (const lbs::Error& error) {
    response.status = PlanStatus::Error;
    response.message = error.what();
  }
  return response;
}

void Client::record_outcome(PlanStatus status) {
  if (options_.breaker_threshold <= 0) return;
  bool transport_failure =
      status == PlanStatus::Disconnected || status == PlanStatus::Timeout;
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (!transport_failure) {
    consecutive_failures_ = 0;
    breaker_is_open_ = false;
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.breaker_threshold) {
    if (!breaker_is_open_ ||
        std::chrono::steady_clock::now() >= breaker_open_until_) {
      // Newly opened, or a half-open trial just failed: re-arm.
      metrics_->counter("service.client.breaker.opens").add();
    }
    breaker_is_open_ = true;
    breaker_open_until_ = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.breaker_cooldown_ms);
  }
}

bool Client::breaker_allows() {
  if (options_.breaker_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (!breaker_is_open_) return true;
  // Cooldown expired: half-open. Let one attempt through; its outcome
  // (record_outcome) either closes the breaker or re-arms the cooldown.
  return std::chrono::steady_clock::now() >= breaker_open_until_;
}

bool Client::breaker_open() const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return breaker_is_open_ &&
         std::chrono::steady_clock::now() < breaker_open_until_;
}

bool Client::ping() {
  auto future = send_control(MessageType::Ping);
  Message reply = future.get();
  return reply.type == MessageType::Pong;
}

std::string Client::server_stats() {
  auto future = send_control(MessageType::StatsRequest);
  Message reply = future.get();
  if (reply.type != MessageType::StatsResponse) return {};
  return reply.text;
}

bool Client::shutdown_server() {
  auto future = send_control(MessageType::Shutdown);
  Message reply = future.get();
  return reply.type == MessageType::ShutdownAck;
}

std::optional<MembershipView> Client::membership_exchange(
    const MembershipView& view) {
  std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Message reply = send_control_frame(id, encode_membership_update(id, view)).get();
  if (reply.type != MessageType::MembershipAck || !reply.view) return std::nullopt;
  return std::move(reply.view);
}

std::future<Message> Client::send_control(MessageType type) {
  std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return send_control_frame(id, encode_control(type, id));
}

std::future<Message> Client::send_control_frame(
    std::uint64_t id, const std::vector<std::uint8_t>& payload) {
  TimePoint deadline = plan_deadline(options_.control_timeout_ms);

  std::promise<Message> promise;
  std::future<Message> future = promise.get_future();
  if (disconnected_.load(std::memory_order_acquire)) {
    promise.set_value(dead_control(id, disconnected_response(id)));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_controls_.emplace(id, PendingControl{std::move(promise), deadline});
  }
  if (deadline != TimePoint::max()) sweeper_cv_.notify_all();

  if (!send_payload(payload, deadline)) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_controls_.find(id);
    if (it != pending_controls_.end()) {
      it->second.promise.set_value(dead_control(id, disconnected_response(id)));
      pending_controls_.erase(it);
    }
  }
  return future;
}

bool Client::send_payload(const std::vector<std::uint8_t>& payload,
                          TimePoint deadline) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ < 0 || disconnected_.load(std::memory_order_acquire)) return false;
  IoStatus status = send_frame_within(fd_, payload, deadline);
  if (status == IoStatus::Ok) return true;
  if (status != IoStatus::TimedOut) {
    // The socket itself failed; a timed-out send leaves the connection
    // intact (the peer may just be slow) — the sweeper owns the verdict.
    disconnected_.store(true, std::memory_order_release);
  }
  return false;
}

void Client::reader_loop() {
  std::vector<std::uint8_t> payload;
  while (!stop_.load(std::memory_order_acquire)) {
    IoStatus status = IoStatus::Closed;
    try {
      status = recv_frame_within(fd_, payload, stop_, no_deadline());
    } catch (const lbs::Error&) {
      status = IoStatus::Closed;  // mis-framed/corrupt stream: disconnect
    }
    if (status != IoStatus::Ok) break;

    Message message;
    try {
      message = decode_message(payload);
    } catch (const lbs::Error&) {
      break;  // protocol violation: drop the connection
    }

    std::promise<PlanResponse> plan_promise;
    std::promise<Message> control_promise;
    bool have_plan = false;
    bool have_control = false;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (message.type == MessageType::PlanResponse && message.plan_response) {
        auto it = pending_plans_.find(message.id);
        if (it != pending_plans_.end()) {
          plan_promise = std::move(it->second.promise);
          pending_plans_.erase(it);
          have_plan = true;
        }
      } else {
        auto it = pending_controls_.find(message.id);
        if (it != pending_controls_.end()) {
          control_promise = std::move(it->second.promise);
          pending_controls_.erase(it);
          have_control = true;
        }
      }
    }
    // Unmatched ids (a reply for a request that timed out or was given
    // up on) are dropped.
    if (have_plan) plan_promise.set_value(std::move(*message.plan_response));
    if (have_control) control_promise.set_value(std::move(message));
  }
  disconnected_.store(true, std::memory_order_release);
  fail_all_pending();
}

void Client::sweeper_loop() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  while (!sweeper_stop_) {
    TimePoint next = TimePoint::max();
    for (const auto& [id, pending] : pending_plans_) {
      next = std::min(next, pending.deadline);
    }
    for (const auto& [id, pending] : pending_controls_) {
      next = std::min(next, pending.deadline);
    }
    if (next == TimePoint::max()) {
      sweeper_cv_.wait(lock);
    } else {
      sweeper_cv_.wait_until(lock, next);
    }
    if (sweeper_stop_) break;

    TimePoint now = std::chrono::steady_clock::now();
    std::vector<std::promise<PlanResponse>> expired_plans;
    std::vector<std::uint64_t> expired_plan_ids;
    std::vector<std::promise<Message>> expired_controls;
    std::vector<std::uint64_t> expired_control_ids;
    for (auto it = pending_plans_.begin(); it != pending_plans_.end();) {
      if (it->second.deadline <= now) {
        expired_plan_ids.push_back(it->first);
        expired_plans.push_back(std::move(it->second.promise));
        it = pending_plans_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = pending_controls_.begin(); it != pending_controls_.end();) {
      if (it->second.deadline <= now) {
        expired_control_ids.push_back(it->first);
        expired_controls.push_back(std::move(it->second.promise));
        it = pending_controls_.erase(it);
      } else {
        ++it;
      }
    }
    if (expired_plans.empty() && expired_controls.empty()) continue;

    // Resolve outside the lock: a waiter woken by set_value may
    // immediately issue a follow-up request that needs pending_mu_.
    lock.unlock();
    for (std::size_t i = 0; i < expired_plans.size(); ++i) {
      metrics_->counter("service.client.timeouts").add();
      expired_plans[i].set_value(timeout_response(expired_plan_ids[i]));
    }
    for (std::size_t i = 0; i < expired_controls.size(); ++i) {
      metrics_->counter("service.client.timeouts").add();
      expired_controls[i].set_value(dead_control(
          expired_control_ids[i], timeout_response(expired_control_ids[i])));
    }
    lock.lock();
  }
}

void Client::fail_all_pending() {
  std::map<std::uint64_t, PendingPlan> plans;
  std::map<std::uint64_t, PendingControl> controls;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    plans.swap(pending_plans_);
    controls.swap(pending_controls_);
  }
  for (auto& [id, pending] : plans) {
    pending.promise.set_value(disconnected_response(id));
  }
  for (auto& [id, pending] : controls) {
    pending.promise.set_value(dead_control(id, disconnected_response(id)));
  }
}

void Client::teardown_connection_locked() {
  stop_.store(true, std::memory_order_release);
  disconnected_.store(true, std::memory_order_release);
  {
    // shutdown() wakes the reader's poll immediately; close the fd only
    // after the reader is joined so no other thread can reuse the number.
    std::lock_guard<std::mutex> lock(write_mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    close_fd(fd_);
    fd_ = -1;
  }
  fail_all_pending();
}

bool Client::try_reconnect() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (closed_) return false;
  if (!disconnected_.load(std::memory_order_acquire)) return true;

  teardown_connection_locked();

  int fd = connect_endpoint(options_.endpoint);
  if (fd < 0) return false;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    fd_ = fd;
  }
  stop_.store(false, std::memory_order_release);
  disconnected_.store(false, std::memory_order_release);
  reader_ = std::thread([this] { reader_loop(); });
  metrics_->counter("service.client.reconnects").add();
  return true;
}

void Client::close() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (closed_) return;
  closed_ = true;
  teardown_connection_locked();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    sweeper_stop_ = true;
  }
  sweeper_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

}  // namespace lbs::service
