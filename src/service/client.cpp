#include "service/client.hpp"

#include <chrono>
#include <utility>

#include <sys/socket.h>

#include "service/socket.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {

PlanResponse disconnected_response(std::uint64_t id) {
  PlanResponse response;
  response.id = id;
  response.status = PlanStatus::Disconnected;
  response.message = "connection to lbsd lost before the reply arrived";
  return response;
}

}  // namespace

Client::Client(const std::string& socket_path) {
  fd_ = connect_unix(socket_path);
  if (fd_ < 0) {
    throw lbs::Error("service client: no server listening at " + socket_path);
  }
  reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() { close(); }

std::future<PlanResponse> Client::plan_async(const model::Platform& platform,
                                             long long items,
                                             core::Algorithm algorithm) {
  std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);

  std::promise<PlanResponse> promise;
  std::future<PlanResponse> future = promise.get_future();
  if (disconnected_.load(std::memory_order_acquire)) {
    promise.set_value(disconnected_response(id));
    return future;
  }

  PlanRequest request;
  request.id = id;
  request.algorithm = algorithm;
  request.items = items;
  request.platform = platform;
  std::vector<std::uint8_t> payload = encode_plan_request(request);

  // Register the promise *before* sending: the reply can race the return
  // from send_payload.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_plans_.emplace(id, std::move(promise));
  }
  if (!send_payload(payload)) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_plans_.find(id);
    if (it != pending_plans_.end()) {
      it->second.set_value(disconnected_response(id));
      pending_plans_.erase(it);
    }
  }
  return future;
}

PlanResponse Client::plan(const model::Platform& platform, long long items,
                          core::Algorithm algorithm) {
  return plan_async(platform, items, algorithm).get();
}

PlanResponse Client::plan_with_retry(const model::Platform& platform,
                                     long long items, core::Algorithm algorithm,
                                     int max_retries) {
  PlanResponse response;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    response = plan(platform, items, algorithm);
    if (response.status != PlanStatus::Rejected) return response;
    std::uint32_t wait_ms = response.retry_after_ms > 0 ? response.retry_after_ms : 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
  return response;  // still Rejected after max_retries
}

bool Client::ping() {
  auto future = send_control(MessageType::Ping);
  Message reply = future.get();
  return reply.type == MessageType::Pong;
}

std::string Client::server_stats() {
  auto future = send_control(MessageType::StatsRequest);
  Message reply = future.get();
  if (reply.type != MessageType::StatsResponse) return {};
  return reply.text;
}

bool Client::shutdown_server() {
  auto future = send_control(MessageType::Shutdown);
  Message reply = future.get();
  return reply.type == MessageType::ShutdownAck;
}

std::future<Message> Client::send_control(MessageType type) {
  std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);

  std::promise<Message> promise;
  std::future<Message> future = promise.get_future();
  auto fail = [id](std::promise<Message>& p) {
    Message dead;
    dead.type = MessageType::PlanResponse;
    dead.id = id;
    dead.plan_response = disconnected_response(id);
    p.set_value(std::move(dead));
  };
  if (disconnected_.load(std::memory_order_acquire)) {
    fail(promise);
    return future;
  }

  std::vector<std::uint8_t> payload = encode_control(type, id);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_controls_.emplace(id, std::move(promise));
  }
  if (!send_payload(payload)) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_controls_.find(id);
    if (it != pending_controls_.end()) {
      fail(it->second);
      pending_controls_.erase(it);
    }
  }
  return future;
}

bool Client::send_payload(const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (fd_ < 0 || disconnected_.load(std::memory_order_acquire)) return false;
  if (send_frame(fd_, payload)) return true;
  disconnected_.store(true, std::memory_order_release);
  return false;
}

void Client::reader_loop() {
  std::vector<std::uint8_t> payload;
  while (!stop_.load(std::memory_order_acquire)) {
    bool ok = false;
    try {
      ok = recv_frame(fd_, payload, stop_);
    } catch (const lbs::Error&) {
      ok = false;  // mis-framed stream: treat as disconnect
    }
    if (!ok) break;

    Message message;
    try {
      message = decode_message(payload);
    } catch (const lbs::Error&) {
      break;  // protocol violation: drop the connection
    }

    std::promise<PlanResponse> plan_promise;
    std::promise<Message> control_promise;
    bool have_plan = false;
    bool have_control = false;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (message.type == MessageType::PlanResponse && message.plan_response) {
        auto it = pending_plans_.find(message.id);
        if (it != pending_plans_.end()) {
          plan_promise = std::move(it->second);
          pending_plans_.erase(it);
          have_plan = true;
        }
      } else {
        auto it = pending_controls_.find(message.id);
        if (it != pending_controls_.end()) {
          control_promise = std::move(it->second);
          pending_controls_.erase(it);
          have_control = true;
        }
      }
    }
    // Unmatched ids (a reply for a request we gave up on) are dropped.
    if (have_plan) plan_promise.set_value(std::move(*message.plan_response));
    if (have_control) control_promise.set_value(std::move(message));
  }
  disconnected_.store(true, std::memory_order_release);
  fail_all_pending();
}

void Client::fail_all_pending() {
  std::map<std::uint64_t, std::promise<PlanResponse>> plans;
  std::map<std::uint64_t, std::promise<Message>> controls;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    plans.swap(pending_plans_);
    controls.swap(pending_controls_);
  }
  for (auto& [id, promise] : plans) {
    promise.set_value(disconnected_response(id));
  }
  for (auto& [id, promise] : controls) {
    Message dead;
    dead.type = MessageType::PlanResponse;
    dead.id = id;
    dead.plan_response = disconnected_response(id);
    promise.set_value(std::move(dead));
  }
}

void Client::close() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    if (reader_.joinable()) reader_.join();
    return;
  }
  disconnected_.store(true, std::memory_order_release);
  {
    // shutdown() wakes the reader's poll immediately; close the fd only
    // after the reader is joined so no other thread can reuse the number.
    std::lock_guard<std::mutex> lock(write_mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    close_fd(fd_);
    fd_ = -1;
  }
  fail_all_pending();
}

}  // namespace lbs::service
