// Deterministic socket-level fault injection for the planning service.
//
// The service's robustness claims ("every request ends in a correct plan
// or a typed error — never a hang, never a wrong plan") are only worth
// stating if they survive a hostile transport. FaultInjector is that
// transport: a seeded RNG decides, per raw read/write attempt, whether to
// cap the transfer to a few bytes (short reads / partial writes), XOR a
// byte in flight (corruption — caught by the frame CRC), shut the socket
// down mid-frame (disconnects), or stall before the syscall (exercises
// client deadlines). Decisions are a pure function of the seed and the
// call sequence, so a failing chaos run replays from its printed seed.
//
// Injection rides the existing socket seam: the low-level helpers in
// socket.cpp consult the process-global injector (when set) on every
// attempt. Production never sets it; the chaos suite installs one around
// traffic and clears it after. The injector is internally synchronized —
// server and client threads in one test process share it safely.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>

#include "support/rng.hpp"

namespace lbs::service {

struct ChaosOptions {
  std::uint64_t seed = 1;

  // Independent per-attempt probabilities, each in [0, 1].
  double short_read = 0.0;     // cap one read at 1..3 bytes
  double partial_write = 0.0;  // cap one send at 1..3 bytes
  double corrupt_byte = 0.0;   // XOR one byte of the outgoing chunk
  double disconnect = 0.0;     // shutdown(2) the fd before the attempt
  double stall = 0.0;          // sleep stall_ms before the attempt
  int stall_ms = 20;
};

class FaultInjector {
 public:
  explicit FaultInjector(const ChaosOptions& options);

  // What the socket layer should do to one write attempt of `size` bytes.
  struct WriteAction {
    std::size_t max_bytes = std::numeric_limits<std::size_t>::max();
    bool corrupt = false;
    std::size_t corrupt_offset = 0;  // < the capped chunk size
    std::uint8_t corrupt_mask = 0;   // XORed into the byte (never 0 when corrupt)
    bool disconnect = false;
    int stall_ms = 0;
  };
  [[nodiscard]] WriteAction on_write(std::size_t size);

  // What the socket layer should do to one read attempt of `size` bytes.
  struct ReadAction {
    std::size_t max_bytes = std::numeric_limits<std::size_t>::max();
    bool disconnect = false;
    int stall_ms = 0;
  };
  [[nodiscard]] ReadAction on_read(std::size_t size);

  // Injection totals since construction (asserting a chaos run actually
  // injected something keeps a mis-seeded test from passing vacuously).
  struct Counters {
    std::uint64_t short_reads = 0;
    std::uint64_t partial_writes = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t stalls = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  mutable std::mutex mu_;
  ChaosOptions options_;
  support::Rng rng_;
  Counters counters_;
};

// Process-global injection seam consulted by socket.cpp's raw I/O helpers.
// nullptr (the default) means no injection. The injector must outlive all
// traffic that can observe it; tests install one for a scope and clear it
// before tearing the injector down.
void set_fault_injector(FaultInjector* injector);
[[nodiscard]] FaultInjector* fault_injector();

}  // namespace lbs::service
