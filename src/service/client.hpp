// Client library for the planning service (lbsd).
//
// One Client owns one connection and pipelines any number of in-flight
// requests over it: plan_async returns a std::future immediately, a
// background reader thread demultiplexes responses by request id, and
// plan() is simply plan_async().get(). The client is thread-safe — many
// threads may issue requests on one Client concurrently (sends serialize
// on a write mutex; the wire format's ids keep replies matched).
//
// Robustness contract (docs/service.md has the full semantics):
//
//   Deadlines.  Every request may carry a deadline
//     (ClientOptions::request_timeout_ms, or per-call override). A
//     dedicated sweeper thread resolves expired futures with
//     PlanStatus::Timeout; the late reply, if it ever arrives, is
//     dropped as an unmatched id. Sends also honor the deadline, so a
//     peer that stops reading cannot wedge the caller in write().
//
//   Backpressure.  PlanStatus::Rejected is not an error, it is the
//     server saying "queue full, come back later". plan_with_retry
//     implements the polite loop: exponential backoff seeded from the
//     server's retry_after_ms hint with ±50% jitter (so a thousand
//     rejected clients do not reconverge on the same millisecond) and a
//     hard cap per sleep.
//
//   Circuit breaker.  breaker_threshold consecutive transport failures
//     (Disconnected / Timeout) open the breaker: for breaker_cooldown_ms
//     every plan_with_retry fails fast with PlanStatus::BreakerOpen
//     instead of queueing behind a dead socket. After the cooldown one
//     trial request probes the server (half-open); success closes the
//     breaker, failure re-arms the cooldown.
//
//   Local fallback.  With local_fallback set, a breaker-open or
//     retries-exhausted plan_with_retry degrades to the in-process
//     planner (core::plan_scatter) instead of failing: same plan the
//     daemon would have computed (it runs the identical engine), flagged
//     with PlanResponse::local_fallback so callers can tell.
//
//   Reconnect.  try_reconnect() re-dials the socket after a disconnect
//     (kill-restart drills); plan_with_retry calls it before each
//     attempt when the connection is down. close() is terminal.
//
// When the connection dies, every outstanding future resolves with
// PlanStatus::Disconnected — futures never hang.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/socket.hpp"
#include "support/rng.hpp"

namespace lbs::obs {
class Metrics;
}

namespace lbs::service {

struct ClientOptions {
  // Filesystem path of the lbsd Unix socket. Legacy/simple form —
  // ignored when `endpoint` is set. One of the two is required.
  std::string socket_path;

  // Where the daemon listens: unix path or TCP host:port. Takes
  // precedence over socket_path.
  Endpoint endpoint;

  // Default deadline for one plan request, send to reply. 0: wait
  // forever (legacy behavior). Expired requests resolve
  // PlanStatus::Timeout and count as transport failures for the breaker.
  std::uint32_t request_timeout_ms = 0;
  // Deadline for control round-trips (ping / stats / shutdown). 0: none.
  std::uint32_t control_timeout_ms = 0;

  // plan_with_retry backoff: sleep_ms grows exponentially per attempt
  // from max(server hint, backoff_base_ms), jittered to ±50%, never
  // above backoff_cap_ms.
  std::uint32_t backoff_base_ms = 1;
  std::uint32_t backoff_cap_ms = 2000;

  // Circuit breaker: this many *consecutive* transport failures open it
  // (0 disables the breaker entirely).
  int breaker_threshold = 5;
  std::uint32_t breaker_cooldown_ms = 1000;

  // Degrade to the in-process planner when the breaker is open or
  // plan_with_retry exhausts its budget on transport failures.
  bool local_fallback = false;
  int fallback_dp_threads = 1;

  // Seed for the backoff jitter stream. 0: derive a per-client seed (two
  // clients must not jitter in lockstep — that is the bug jitter fixes).
  std::uint64_t jitter_seed = 0;

  // Metrics sink for service.client.* counters; null falls back to
  // obs::global_metrics().
  obs::Metrics* metrics = nullptr;
};

// The plan_with_retry sleep schedule, exposed for tests: exponential in
// `attempt` (0-based) from max(hint_ms, base_ms), capped at cap_ms, then
// jittered uniformly over [½·b, 3⁄2·b]. Always returns >= 1.
[[nodiscard]] std::uint32_t backoff_with_jitter(std::uint32_t hint_ms, int attempt,
                                                std::uint32_t base_ms,
                                                std::uint32_t cap_ms,
                                                support::Rng& rng);

class Client {
 public:
  // Connects to a listening lbsd endpoint. The string form accepts any
  // Endpoint::parse spec (a bare path, "host:port", "unix:…", "tcp:…").
  // Throws lbs::Error when no server is reachable there.
  explicit Client(const std::string& endpoint_spec);
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Fire-and-collect: the returned future resolves when the server
  // answers (Ok / Rejected / Error), the deadline expires (Timeout), or
  // the connection dies (Disconnected). Safe to call from any thread,
  // any number in flight. timeout_ms overrides options().request_timeout_ms
  // for this request (0: no deadline).
  [[nodiscard]] std::future<PlanResponse> plan_async(
      const model::Platform& platform, long long items,
      core::Algorithm algorithm = core::Algorithm::Auto,
      std::optional<std::uint32_t> timeout_ms = std::nullopt);

  // Synchronous convenience: plan_async + get. Feeds the breaker's
  // failure accounting.
  [[nodiscard]] PlanResponse plan(const model::Platform& platform, long long items,
                                  core::Algorithm algorithm = core::Algorithm::Auto,
                                  std::optional<std::uint32_t> timeout_ms = std::nullopt);

  // The polite client loop: retries Rejected (honoring retry_after_ms
  // with jittered exponential backoff) and transport failures (after
  // try_reconnect) up to `max_retries` extra attempts; fails fast with
  // BreakerOpen while the breaker is open; degrades to the in-process
  // planner when configured. Ok, Error, and WrongEpoch return
  // immediately — WrongEpoch is conclusive for THIS replica (the caller
  // must re-ring from response.current_view and route elsewhere; a
  // retry here would just be redirected again).
  [[nodiscard]] PlanResponse plan_with_retry(
      const model::Platform& platform, long long items,
      core::Algorithm algorithm = core::Algorithm::Auto, int max_retries = 8);

  // Round-trips a Ping; false when the connection is gone (or the
  // control deadline expired).
  [[nodiscard]] bool ping();

  // Fetches the server's stats JSON; empty string when disconnected.
  [[nodiscard]] std::string server_stats();

  // Asks the server to shut down; true when the ack arrived.
  bool shutdown_server();

  // The membership epoch stamped on every outgoing plan request (0 =
  // unversioned). FleetClient keeps this in step with its view so the
  // server can detect a stale router.
  void set_epoch(std::uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  // One MembershipUpdate round-trip: the server adopts `view` iff newer
  // and the Ack returns wherever it converged. An epoch-0 view is a pure
  // query. Returns nullopt when the connection is down or the reply was
  // not an Ack; like all control traffic, never feeds the breaker.
  [[nodiscard]] std::optional<MembershipView> membership_exchange(
      const MembershipView& view);

  [[nodiscard]] bool connected() const {
    return !disconnected_.load(std::memory_order_acquire);
  }

  // Re-dials the socket after a disconnect. True when the connection is
  // usable afterwards (including "was never down"). False after close()
  // or when the server is still unreachable. Outstanding futures from
  // the dead connection resolve Disconnected first.
  bool try_reconnect();

  // True while the breaker is failing fast (cooldown not yet expired).
  [[nodiscard]] bool breaker_open() const;

  [[nodiscard]] const ClientOptions& options() const { return options_; }

  // Closes the connection; outstanding futures resolve Disconnected.
  // Terminal: try_reconnect refuses afterwards.
  void close();

 private:
  using TimePoint = std::chrono::steady_clock::time_point;
  struct PendingPlan {
    std::promise<PlanResponse> promise;
    TimePoint deadline = TimePoint::max();
  };
  struct PendingControl {
    std::promise<Message> promise;
    TimePoint deadline = TimePoint::max();
  };

  // A control round-trip (Ping/StatsRequest/Shutdown): resolves with the
  // matching response Message, or type == PlanResponse + Disconnected
  // body when the connection dies first.
  [[nodiscard]] std::future<Message> send_control(MessageType type);
  // Same demux path for a control frame with a body (MembershipUpdate).
  [[nodiscard]] std::future<Message> send_control_frame(
      std::uint64_t id, const std::vector<std::uint8_t>& payload);
  [[nodiscard]] bool send_payload(const std::vector<std::uint8_t>& payload,
                                  TimePoint deadline);
  void reader_loop();
  void sweeper_loop();
  void fail_all_pending();
  void teardown_connection_locked();  // requires lifecycle_mu_

  // Breaker accounting: Disconnected/Timeout are transport failures,
  // anything the server actually said (Ok/Rejected/Error) is a success.
  void record_outcome(PlanStatus status);
  [[nodiscard]] bool breaker_allows();

  [[nodiscard]] PlanResponse local_plan(const model::Platform& platform,
                                        long long items, core::Algorithm algorithm,
                                        const std::string& reason);

  ClientOptions options_;
  obs::Metrics* metrics_ = nullptr;

  int fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> disconnected_{false};
  std::thread reader_;
  std::mutex write_mu_;

  std::mutex lifecycle_mu_;  // serializes close() and try_reconnect()
  bool closed_ = false;      // guarded by lifecycle_mu_

  std::mutex pending_mu_;
  std::condition_variable sweeper_cv_;  // with pending_mu_
  bool sweeper_stop_ = false;           // guarded by pending_mu_
  std::map<std::uint64_t, PendingPlan> pending_plans_;
  std::map<std::uint64_t, PendingControl> pending_controls_;
  std::thread sweeper_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> epoch_{0};

  mutable std::mutex breaker_mu_;
  int consecutive_failures_ = 0;  // guarded by breaker_mu_
  bool breaker_is_open_ = false;  // guarded by breaker_mu_
  TimePoint breaker_open_until_{};

  std::mutex rng_mu_;
  support::Rng rng_;  // jitter stream, guarded by rng_mu_
};

}  // namespace lbs::service
