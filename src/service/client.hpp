// Client library for the planning service (lbsd).
//
// One Client owns one connection and pipelines any number of in-flight
// requests over it: plan_async returns a std::future immediately, a
// background reader thread demultiplexes responses by request id, and
// plan() is simply plan_async().get(). The client is thread-safe — many
// threads may issue requests on one Client concurrently (sends serialize
// on a write mutex; the wire format's ids keep replies matched).
//
// Backpressure contract: a PlanStatus::Rejected response is not an error,
// it is the server saying "queue full, come back in retry_after_ms".
// plan_with_retry implements the polite client loop (bounded retries,
// honoring the hint). When the connection dies, every outstanding future
// resolves with PlanStatus::Disconnected — futures never hang.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"

namespace lbs::service {

class Client {
 public:
  // Connects to a listening lbsd socket. Throws lbs::Error when no server
  // is reachable at `socket_path`.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Fire-and-collect: the returned future resolves when the server
  // answers (Ok / Rejected / Error) or the connection dies
  // (Disconnected). Safe to call from any thread, any number in flight.
  [[nodiscard]] std::future<PlanResponse> plan_async(
      const model::Platform& platform, long long items,
      core::Algorithm algorithm = core::Algorithm::Auto);

  // Synchronous convenience: plan_async + get.
  [[nodiscard]] PlanResponse plan(const model::Platform& platform, long long items,
                                  core::Algorithm algorithm = core::Algorithm::Auto);

  // Retries Rejected responses up to `max_retries` times, sleeping the
  // server's retry_after_ms hint between attempts. Other statuses return
  // immediately.
  [[nodiscard]] PlanResponse plan_with_retry(
      const model::Platform& platform, long long items,
      core::Algorithm algorithm = core::Algorithm::Auto, int max_retries = 8);

  // Round-trips a Ping; false when the connection is gone.
  [[nodiscard]] bool ping();

  // Fetches the server's stats JSON; empty string when disconnected.
  [[nodiscard]] std::string server_stats();

  // Asks the server to shut down; true when the ack arrived.
  bool shutdown_server();

  [[nodiscard]] bool connected() const {
    return !disconnected_.load(std::memory_order_acquire);
  }

  // Closes the connection; outstanding futures resolve Disconnected.
  void close();

 private:
  // A control round-trip (Ping/StatsRequest/Shutdown): resolves with the
  // matching response Message, or type == PlanResponse + Disconnected
  // body when the connection dies first.
  [[nodiscard]] std::future<Message> send_control(MessageType type);
  [[nodiscard]] bool send_payload(const std::vector<std::uint8_t>& payload);
  void reader_loop();
  void fail_all_pending();

  int fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> disconnected_{false};
  std::thread reader_;
  std::mutex write_mu_;

  std::mutex pending_mu_;
  std::map<std::uint64_t, std::promise<PlanResponse>> pending_plans_;
  std::map<std::uint64_t, std::promise<Message>> pending_controls_;
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace lbs::service
