// Plan-cache snapshots: crash-safe persistence for lbsd's warm state.
//
// A plan is a pure function of its PlanKey, so the sharded cache's
// contents are trivially safe to persist and replay: a restored entry can
// never be stale, only evicted. What must NOT happen is a torn or
// corrupted file silently warming the cache with garbage — so the format
// is defensive end to end:
//
//   header (24 bytes, little-endian):
//     u64 magic            "LBSSNAP1" — rejects foreign files instantly
//     u32 format_version   kSnapshotVersion; bump on any layout change
//     u32 entry_count
//     u32 payload_bytes
//     u32 payload_crc32    support::crc32 over the payload
//   payload: entry_count entries in LRU order (least recent first),
//     each encoded with the wire codec's primitives (protocol.hpp), so
//     doubles are IEEE-754 bit patterns and a restored plan is
//     bit-identical to the one that was solved:
//       key:  u32 n | n x u64 cost fingerprints | i64 items | u8 algorithm
//       plan: u8 algorithm_used | f64 predicted_makespan
//             | i64 dp_cells_evaluated | u32 dp_threads
//             | u32 p | p x i64 counts | u32 p | p x f64 predicted_finish
//     (displacements are prefix sums of counts — recomputed exactly).
//
// Writes are atomic: serialize to `<path>.tmp.<pid>`, fsync, rename(2)
// over the target. A crash mid-write leaves either the previous snapshot
// or a stray tmp file — never a half-written target — and any torn,
// truncated, stale-versioned, or bit-flipped file fails read_snapshot
// with a typed lbs::Error, which the server turns into a logged cold
// start, not a crash.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/plan_cache.hpp"

namespace lbs::service {

inline constexpr std::uint64_t kSnapshotMagic = 0x3150414E5353424CULL;  // "LBSSNAP1"
// v2: plan entries grew the Eq. 4 optimality certificate (flag + f64 gap).
inline constexpr std::uint32_t kSnapshotVersion = 2;
// One snapshot entry is O(p) small; this bounds a hostile or corrupt
// entry_count before any allocation trusts it.
inline constexpr std::uint32_t kMaxSnapshotEntries = 1u << 20;
inline constexpr std::uint32_t kMaxSnapshotPayloadBytes = 256u << 20;

using SnapshotEntry = std::pair<core::PlanKey, core::ScatterPlan>;

class WireReader;
class WireWriter;

// The per-entry codec, shared by the snapshot file format and the
// SnapshotRange handoff frames (protocol.hpp): a joining replica's
// warm-start entries travel the wire in exactly the bytes the snapshot
// file would hold, so both paths restore bit-identical plans.
void encode_snapshot_entry(WireWriter& out, const SnapshotEntry& entry);
[[nodiscard]] SnapshotEntry decode_snapshot_entry(WireReader& in);

struct SnapshotStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;  // payload + header
};

// Serializes entries and atomically replaces `path`. Throws lbs::Error on
// I/O failure (unwritable directory, rename failure) — the caller decides
// whether that is fatal (a CLI) or a counted, retried event (the server's
// periodic writer).
SnapshotStats write_snapshot(const std::string& path,
                             const std::vector<SnapshotEntry>& entries);

// Reads and fully validates a snapshot. Throws lbs::Error on a missing
// file, foreign magic, version mismatch, truncation, trailing bytes, or a
// checksum mismatch; returns the entries (least recent first) otherwise.
[[nodiscard]] std::vector<SnapshotEntry> read_snapshot(const std::string& path);

}  // namespace lbs::service
