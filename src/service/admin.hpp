// Membership orchestration — the control-plane verbs behind
// `lbsctl join|drain|remove`.
//
// A membership change is just "mint a strictly newer MembershipView and
// tell everyone", but the ORDER of telling is what makes resharding
// lossless (docs/service.md#elasticity has the full protocol):
//
//   join (two phases):
//     1. epoch E+1: the joiner appears as Joining. Broadcast. Nobody
//        re-rings (Joining members are not route-eligible); the fleet
//        merely learns the name. A Joining replica serves cache hits but
//        WrongEpochs new solves, so no key can land there prematurely.
//     2. epoch E+2: the joiner flips to Serving. Pushed to the JOINER
//        FIRST — adopting the view that makes it eligible triggers its
//        snapshot pull (SnapshotRange) from every serving peer, and
//        adopt_view publishes the new epoch only after the pull, so by
//        the time anyone routes to it, its cache already holds its
//        partition: zero re-solves. Then broadcast to the rest.
//
//   drain: epoch E+1 with the target Draining. Pushed to the SURVIVORS
//     FIRST — each adopts, sees a Serving→Draining transition, and pulls
//     the target's partition while the target still admits everything
//     under E. The target learns last and only then starts WrongEpoch-ing
//     new keys (in-flight and coalesced work still completes).
//
//   remove: epoch E+1 without the target. Survivors first, target last
//     (best effort — a crashed target cannot ack its own removal, which
//     is fine: the view does not require it).
//
// Every push is one MembershipUpdate round-trip (adopt-iff-newer +
// MembershipAck), so replaying any of these against a fleet that already
// converged is a no-op. Unreachable members are recorded, not fatal:
// convergence is finished by WrongEpoch redirects and the membership
// file — the broadcast is an accelerant, not a requirement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/membership.hpp"
#include "service/socket.hpp"

namespace lbs::service::admin {

struct PushResult {
  MembershipView view;               // the final view that was pushed
  int acked = 0;                     // round-trips that came back
  std::vector<std::string> errors;   // "<endpoint>: <reason>" per failure
};

// One epoch-0 MembershipUpdate round-trip: returns the target's current
// view without changing it, or nullopt when the target is unreachable.
[[nodiscard]] std::optional<MembershipView> fetch_view(
    const Endpoint& target, std::uint32_t timeout_ms = 2000);

// Pushes `view` to the given endpoints in order (adopt-iff-newer on each
// side). Counts acks; unreachable targets become errors.
PushResult push_view(const MembershipView& view,
                     const std::vector<Endpoint>& targets,
                     std::uint32_t timeout_ms = 2000);

// The two-phase join described above. `base` is the fleet's current view
// (fetch_view from any member, or synthesized epoch-0 for a fresh
// fleet); `joiner` must not already be a member. Returns the final
// (E+2) view.
PushResult join_fleet(const MembershipView& base, const Endpoint& joiner,
                      std::uint32_t timeout_ms = 2000);

// Marks `target` Draining at epoch+1, survivors first. Target must be a
// Serving member.
PushResult drain_replica(const MembershipView& base, const Endpoint& target,
                         std::uint32_t timeout_ms = 2000);

// Drops `target` from the view at epoch+1, survivors first, target last
// (best effort). Target must be a member in any state.
PushResult remove_replica(const MembershipView& base, const Endpoint& target,
                          std::uint32_t timeout_ms = 2000);

}  // namespace lbs::service::admin
