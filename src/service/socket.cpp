#include "service/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/chaos.hpp"
#include "service/protocol.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw lbs::Error("service socket: " + what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(address.sun_path)) {
    // Operator error, not a broken invariant: a daemon handed a bad
    // --socket flag reports this and exits instead of crashing.
    throw Error("service socket: path too long for sockaddr_un (" +
                std::to_string(path.size()) + " bytes, max " +
                std::to_string(sizeof(address.sun_path) - 1) + "): " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

// Nagle off for the framed request/response pattern; a no-op (ignored
// error) on Unix-domain fds, so accept paths can call it unconditionally.
void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Resolved addrinfo list for a TCP endpoint, freed by the caller via
// freeaddrinfo. Throws service::Error when the host does not resolve.
addrinfo* resolve_tcp(const Endpoint& endpoint, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  addrinfo* result = nullptr;
  std::string service = std::to_string(endpoint.port);
  const char* node = endpoint.host.empty() ? nullptr : endpoint.host.c_str();
  int rc = ::getaddrinfo(node, service.c_str(), &hints, &result);
  if (rc != 0) {
    throw Error("service socket: cannot resolve " + endpoint.to_string() +
                ": " + ::gai_strerror(rc));
  }
  return result;
}

// Remaining poll budget in ms: -1 for "no deadline", 0 when already past.
int remaining_ms(IoDeadline deadline) {
  if (deadline == no_deadline()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(
      std::min<long long>(left.count(), std::numeric_limits<int>::max()));
}

// Polls fd for `events` until readable/writable, stop, or deadline.
IoStatus wait_io(int fd, short events, const std::atomic<bool>* stop,
                 IoDeadline deadline, int slice_ms) {
  while (stop == nullptr || !stop->load(std::memory_order_acquire)) {
    int budget = remaining_ms(deadline);
    if (budget == 0) return IoStatus::TimedOut;
    int wait = slice_ms;
    if (budget > 0) wait = std::min(wait, budget);
    if (stop == nullptr && budget < 0) wait = -1;  // nothing to slice for
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll");
    }
    if (ready > 0) return IoStatus::Ok;  // ready, HUP, or error: the op resolves it
  }
  return IoStatus::Stopped;
}

// Applies an injected fault that precedes an I/O attempt. Returns the
// byte cap for this attempt (>= 1 unless disconnected).
std::size_t apply_read_faults(int fd, std::size_t size) {
  FaultInjector* injector = fault_injector();
  if (injector == nullptr) return size;
  FaultInjector::ReadAction action = injector->on_read(size);
  if (action.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.stall_ms));
  }
  if (action.disconnect) ::shutdown(fd, SHUT_RDWR);
  return std::min(action.max_bytes, size);
}

// Reads exactly `size` bytes, honoring stop and deadline.
IoStatus read_exact(int fd, std::uint8_t* data, std::size_t size,
                    const std::atomic<bool>& stop, IoDeadline deadline,
                    int slice_ms) {
  std::size_t done = 0;
  while (done < size) {
    IoStatus waited = wait_io(fd, POLLIN, &stop, deadline, slice_ms);
    if (waited != IoStatus::Ok) return waited;
    std::size_t cap = apply_read_faults(fd, size - done);
    ssize_t got = ::read(fd, data + done, cap);
    if (got == 0) return IoStatus::Closed;  // orderly EOF
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == ECONNRESET) return IoStatus::Closed;
      raise_errno("read");
    }
    done += static_cast<std::size_t>(got);
  }
  return IoStatus::Ok;
}

// Writes exactly `size` bytes, polling for writability so the deadline
// holds even against a full peer buffer. MSG_DONTWAIT keeps a blocking
// fd from sleeping in send(2) past the poll's verdict.
IoStatus write_exact(int fd, const std::uint8_t* data, std::size_t size,
                     IoDeadline deadline) {
  std::size_t done = 0;
  std::vector<std::uint8_t> scratch;  // only allocated when a fault corrupts
  while (done < size) {
    IoStatus waited = wait_io(fd, POLLOUT, nullptr, deadline, 100);
    if (waited != IoStatus::Ok) return waited;

    const std::uint8_t* chunk = data + done;
    std::size_t chunk_size = size - done;
    if (FaultInjector* injector = fault_injector(); injector != nullptr) {
      FaultInjector::WriteAction action = injector->on_write(chunk_size);
      if (action.stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(action.stall_ms));
      }
      if (action.disconnect) ::shutdown(fd, SHUT_RDWR);
      chunk_size = std::min(action.max_bytes, chunk_size);
      if (action.corrupt) {
        scratch.assign(chunk, chunk + chunk_size);
        scratch[action.corrupt_offset % chunk_size] ^= action.corrupt_mask;
        chunk = scratch.data();
      }
    }

    ssize_t put = ::send(fd, chunk, chunk_size, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (put < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == EBADF) {
        return IoStatus::Closed;
      }
      raise_errno("send");
    }
    done += static_cast<std::size_t>(put);
  }
  return IoStatus::Ok;
}

void put_le32(std::uint8_t* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint32_t get_le32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

}  // namespace

Endpoint Endpoint::unix_path(std::string socket_path) {
  Endpoint endpoint;
  endpoint.kind = Kind::Unix;
  endpoint.path = std::move(socket_path);
  return endpoint;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint endpoint;
  endpoint.kind = Kind::Tcp;
  endpoint.host = std::move(host);
  endpoint.port = port;
  return endpoint;
}

namespace {

// "host:port" with a numeric in-range port after the LAST colon (so
// "[::1]-style" bracketed v6 is not needed for the common cases, and
// "tcp:host:port" splits correctly after the prefix is stripped).
bool parse_host_port(const std::string& spec, Endpoint& out) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return false;
  }
  long long port = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') return false;
    port = port * 10 + (spec[i] - '0');
    if (port > 65535) return false;
  }
  if (port <= 0) return false;
  out = Endpoint::tcp(spec.substr(0, colon), static_cast<std::uint16_t>(port));
  return true;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.empty()) throw Error("service socket: empty endpoint spec");
  if (spec.rfind("unix:", 0) == 0) return unix_path(spec.substr(5));
  if (spec.rfind("tcp:", 0) == 0) {
    Endpoint endpoint;
    if (!parse_host_port(spec.substr(4), endpoint)) {
      throw Error("service socket: bad tcp endpoint (want tcp:host:port): " +
                  spec);
    }
    return endpoint;
  }
  // A filesystem path never needs a trailing :port, so host:port wins the
  // ambiguity; anything else is a unix path.
  Endpoint endpoint;
  if (parse_host_port(spec, endpoint)) return endpoint;
  return unix_path(spec);
}

std::string Endpoint::to_string() const {
  switch (kind) {
    case Kind::Unix:
      return "unix:" + path;
    case Kind::Tcp:
      return "tcp:" + host + ":" + std::to_string(port);
    case Kind::None:
      return "<invalid endpoint>";
  }
  return "<invalid endpoint>";
}

std::vector<Endpoint> parse_endpoint_list(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t comma = spec.find(',', begin);
    if (comma == std::string::npos) comma = spec.size();
    std::string one = spec.substr(begin, comma - begin);
    if (!one.empty()) endpoints.push_back(Endpoint::parse(one));
    begin = comma + 1;
  }
  if (endpoints.empty()) {
    throw Error("service socket: empty endpoint list: " + spec);
  }
  return endpoints;
}

IoDeadline deadline_after_ms(std::uint32_t ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un address = make_address(path);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    raise_errno("bind " + path);
  }
  if (::listen(fd, backlog) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    raise_errno("listen " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un address = make_address(path);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    int saved = errno;
    ::close(fd);
    if (saved == ENOENT || saved == ECONNREFUSED) return -1;
    errno = saved;
    raise_errno("connect " + path);
  }
  return fd;
}

namespace {

int listen_tcp(Endpoint& endpoint, int backlog) {
  addrinfo* addresses = resolve_tcp(endpoint, /*passive=*/true);
  int fd = -1;
  int saved = 0;
  for (addrinfo* ai = addresses; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved = errno;
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      // Port 0 asked the kernel to pick: report the real one back so the
      // caller can hand peers a dialable endpoint.
      if (endpoint.port == 0) {
        sockaddr_storage bound{};
        socklen_t bound_len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                          &bound_len) == 0) {
          if (bound.ss_family == AF_INET) {
            endpoint.port = ntohs(
                reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
          } else if (bound.ss_family == AF_INET6) {
            endpoint.port = ntohs(
                reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
          }
        }
      }
      ::freeaddrinfo(addresses);
      return fd;
    }
    saved = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addresses);
  errno = saved;
  raise_errno("bind/listen " + endpoint.to_string());
}

int connect_tcp(const Endpoint& endpoint) {
  addrinfo* addresses = resolve_tcp(endpoint, /*passive=*/false);
  int saved = 0;
  for (addrinfo* ai = addresses; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      set_nodelay(fd);
      ::freeaddrinfo(addresses);
      return fd;
    }
    saved = errno;
    ::close(fd);
  }
  ::freeaddrinfo(addresses);
  if (saved == ECONNREFUSED || saved == ETIMEDOUT || saved == EHOSTUNREACH ||
      saved == ENETUNREACH || saved == EADDRNOTAVAIL) {
    return -1;  // nobody serving there right now — the caller's retry loop owns it
  }
  errno = saved;
  raise_errno("connect " + endpoint.to_string());
}

}  // namespace

int listen_endpoint(Endpoint& endpoint, int backlog) {
  switch (endpoint.kind) {
    case Endpoint::Kind::Unix:
      return listen_unix(endpoint.path, backlog);
    case Endpoint::Kind::Tcp:
      return listen_tcp(endpoint, backlog);
    case Endpoint::Kind::None:
      break;
  }
  throw Error("service socket: cannot listen on an invalid endpoint");
}

int connect_endpoint(const Endpoint& endpoint) {
  switch (endpoint.kind) {
    case Endpoint::Kind::Unix:
      return connect_unix(endpoint.path);
    case Endpoint::Kind::Tcp:
      return connect_tcp(endpoint);
    case Endpoint::Kind::None:
      break;
  }
  throw Error("service socket: cannot connect to an invalid endpoint");
}

int accept_with_stop(int listen_fd, const std::atomic<bool>& stop, int slice_ms) {
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, slice_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll(listen)");
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return fd;
    }
    if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
    return -1;  // listener closed under us: shutdown path
  }
  return -1;
}

IoStatus send_frame_within(int fd, const std::vector<std::uint8_t>& payload,
                           IoDeadline deadline) {
  LBS_CHECK_MSG(payload.size() <= kMaxFrameBytes, "frame exceeds kMaxFrameBytes");
  std::uint8_t header[8];
  put_le32(header, static_cast<std::uint32_t>(payload.size()));
  put_le32(header + 4, support::crc32(payload));

  IoStatus sent = write_exact(fd, header, sizeof(header), deadline);
  if (sent != IoStatus::Ok) return sent;
  return write_exact(fd, payload.data(), payload.size(), deadline);
}

IoStatus recv_frame_within(int fd, std::vector<std::uint8_t>& payload,
                           const std::atomic<bool>& stop, IoDeadline deadline,
                           int slice_ms) {
  std::uint8_t header[8];
  IoStatus got = read_exact(fd, header, sizeof(header), stop, deadline, slice_ms);
  if (got != IoStatus::Ok) return got;
  std::uint32_t length = get_le32(header);
  std::uint32_t expected_crc = get_le32(header + 4);
  LBS_CHECK_MSG(length <= kMaxFrameBytes, "frame length exceeds kMaxFrameBytes");
  payload.resize(length);
  if (length > 0) {
    got = read_exact(fd, payload.data(), length, stop, deadline, slice_ms);
    if (got != IoStatus::Ok) return got;
  }
  // A mismatch means bytes flipped in flight (or a desynchronized or
  // hostile peer); the stream cannot be trusted past this point.
  LBS_CHECK_MSG(support::crc32(payload) == expected_crc,
                "frame checksum mismatch");
  return IoStatus::Ok;
}

bool send_frame(int fd, const std::vector<std::uint8_t>& payload) {
  return send_frame_within(fd, payload, no_deadline()) == IoStatus::Ok;
}

bool recv_frame(int fd, std::vector<std::uint8_t>& payload,
                const std::atomic<bool>& stop, int slice_ms) {
  return recv_frame_within(fd, payload, stop, no_deadline(), slice_ms) ==
         IoStatus::Ok;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace lbs::service
