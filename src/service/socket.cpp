#include "service/socket.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw lbs::Error("service socket: " + what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  LBS_CHECK_MSG(path.size() + 1 <= sizeof(address.sun_path),
                "socket path too long for sockaddr_un");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

// True when `fd` became readable; false on stop. Throws on poll failure.
bool wait_readable(int fd, const std::atomic<bool>& stop, int slice_ms) {
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, slice_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll");
    }
    if (ready > 0) return true;  // readable, HUP, or error: read() resolves it
  }
  return false;
}

// Reads exactly `size` bytes. Returns false on EOF/reset/stop.
bool read_exact(int fd, std::uint8_t* data, std::size_t size,
                const std::atomic<bool>& stop, int slice_ms) {
  std::size_t done = 0;
  while (done < size) {
    if (!wait_readable(fd, stop, slice_ms)) return false;
    ssize_t got = ::read(fd, data + done, size - done);
    if (got == 0) return false;  // orderly EOF
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == ECONNRESET) return false;
      raise_errno("read");
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un address = make_address(path);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    raise_errno("bind " + path);
  }
  if (::listen(fd, backlog) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    raise_errno("listen " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un address = make_address(path);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    int saved = errno;
    ::close(fd);
    if (saved == ENOENT || saved == ECONNREFUSED) return -1;
    errno = saved;
    raise_errno("connect " + path);
  }
  return fd;
}

int accept_with_stop(int listen_fd, const std::atomic<bool>& stop, int slice_ms) {
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, slice_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise_errno("poll(listen)");
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
    return -1;  // listener closed under us: shutdown path
  }
  return -1;
}

bool send_frame(int fd, const std::vector<std::uint8_t>& payload) {
  LBS_CHECK_MSG(payload.size() <= kMaxFrameBytes, "frame exceeds kMaxFrameBytes");
  std::uint8_t header[4];
  std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(length >> (8 * i));
  }

  auto write_all = [fd](const std::uint8_t* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
      ssize_t put = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
      if (put < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET || errno == EBADF) return false;
        raise_errno("send");
      }
      done += static_cast<std::size_t>(put);
    }
    return true;
  };

  if (!write_all(header, sizeof(header))) return false;
  return write_all(payload.data(), payload.size());
}

bool recv_frame(int fd, std::vector<std::uint8_t>& payload,
                const std::atomic<bool>& stop, int slice_ms) {
  std::uint8_t header[4];
  if (!read_exact(fd, header, sizeof(header), stop, slice_ms)) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  LBS_CHECK_MSG(length <= kMaxFrameBytes, "frame length exceeds kMaxFrameBytes");
  payload.resize(length);
  if (length == 0) return true;
  return read_exact(fd, payload.data(), length, stop, slice_ms);
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace lbs::service
