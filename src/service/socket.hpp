// Thin POSIX wrappers for the service's stream transports.
//
// lbsd listens on an Endpoint: either a filesystem socket (SOCK_STREAM
// over AF_UNIX — local, no network dependency) or a TCP host:port (the
// fleet transport — N replicas on N ports, one consistent-hash ring in
// front). Both carry the identical length-prefixed framing from
// service/protocol.hpp on a reliable byte stream; everything above the
// fd never knows which family it is speaking. Everything here is
// poll-based: reads wait in poll() slices so a thread blocked on a
// quiet peer still notices `stop` (the server/client shutdown flag)
// within one slice, and both directions accept a per-call deadline so a
// stalled or half-dead peer surfaces as a typed IoStatus::TimedOut
// instead of hanging the caller forever (poll(2) carries the timeout; no
// SO_RCVTIMEO, which a mid-frame short read would quietly reset).
// TCP connections set TCP_NODELAY: frames are small and latency-bound,
// and Nagle would serialize the pipelined request/response pattern.
//
// Frame integrity: every frame is `u32 length | u32 crc32 | payload`.
// The CRC (support::crc32 over the payload) turns in-flight byte
// corruption — a chaos-injected fault or a genuinely hostile peer — into
// a detected protocol violation that drops the connection, never into a
// silently wrong plan.
//
// Fault injection: when the chaos harness has installed a
// service::FaultInjector (chaos.hpp), the raw read/write helpers consult
// it on every attempt; production pays one relaxed atomic load per
// attempt when none is set.
//
// Error policy follows the repo convention: conditions that are *data*
// (peer hung up, stop requested, deadline passed) are return values;
// violated invariants, corrupt frames, and unexpected syscall failures
// throw lbs::Error. Operator mistakes a CLI should report cleanly — a
// socket path too long for sockaddr_un, an unresolvable host, a
// malformed endpoint spec — throw the narrower service::Error so callers
// can tell "you misconfigured me" from "an invariant broke".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace lbs::service {

// Typed service-layer error: endpoint/transport configuration the
// operator got wrong (bad --socket path, bad host:port). Derives from
// lbs::Error so existing catch sites keep working; daemons catch it and
// exit with a clean message instead of a crash report.
class Error : public lbs::Error {
 public:
  using lbs::Error::Error;
};

// Where a Server listens or a Client dials: a Unix-domain filesystem
// path or a TCP host:port. One Endpoint type end to end is what lets the
// fleet mix transports freely (local replicas on unix sockets, remote
// ones over TCP) behind the same wire protocol.
struct Endpoint {
  enum class Kind : std::uint8_t { None, Unix, Tcp };

  Kind kind = Kind::None;
  std::string path;  // Kind::Unix: filesystem socket path
  std::string host;  // Kind::Tcp: numeric address or resolvable name
  std::uint16_t port = 0;

  [[nodiscard]] static Endpoint unix_path(std::string socket_path);
  [[nodiscard]] static Endpoint tcp(std::string host, std::uint16_t port);

  // Accepts "unix:/path", "tcp:host:port", bare "host:port" (the text
  // after the last ':' must be a valid port), and bare filesystem paths.
  // Throws service::Error on a spec that parses as neither.
  [[nodiscard]] static Endpoint parse(const std::string& spec);

  [[nodiscard]] bool valid() const { return kind != Kind::None; }
  // Round-trips through parse(); also the fleet's ring node identity.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

// Splits a comma-separated endpoint list ("a.sock,host:4077,unix:b") —
// the fleet addressing syntax lbsctl and the load generator accept.
[[nodiscard]] std::vector<Endpoint> parse_endpoint_list(const std::string& spec);

// Outcome of one framed I/O call.
enum class IoStatus : std::uint8_t {
  Ok,        // the full frame moved
  Closed,    // orderly EOF or peer reset (mid-frame EOF included)
  Stopped,   // the caller's stop flag was raised
  TimedOut,  // the deadline passed before the frame completed
};

// Per-call deadline: a steady-clock time point; no_deadline() waits
// forever (modulo the stop flag on reads).
using IoDeadline = std::chrono::steady_clock::time_point;
[[nodiscard]] constexpr IoDeadline no_deadline() { return IoDeadline::max(); }
[[nodiscard]] IoDeadline deadline_after_ms(std::uint32_t ms);

// Binds and listens on `path` (unlinking any stale socket file first).
// Returns the listening fd; throws service::Error on an unusable path
// (too long for sockaddr_un) and lbs::Error on unexpected failures.
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 64);

// Connects to a listening socket. Returns the fd, or -1 when the server
// is not there (no daemon, stale path); throws on unexpected errors.
[[nodiscard]] int connect_unix(const std::string& path);

// Family-dispatching variants. listen_endpoint updates a Tcp endpoint's
// port in place when it was 0 (kernel-assigned), so the caller learns
// the address peers must dial. connect_endpoint returns -1 when no
// server is reachable there (refused, unreachable, missing socket file);
// both throw service::Error on misconfiguration (invalid endpoint,
// unresolvable host, oversize unix path).
[[nodiscard]] int listen_endpoint(Endpoint& endpoint, int backlog = 64);
[[nodiscard]] int connect_endpoint(const Endpoint& endpoint);

// Accepts one connection, polling in `slice_ms` intervals so `stop` is
// honored. Returns the connection fd, or -1 on stop/listener close.
[[nodiscard]] int accept_with_stop(int listen_fd, const std::atomic<bool>& stop,
                                   int slice_ms = 100);

// Writes a complete frame (u32 length + u32 crc + payload), polling for
// writability so `deadline` is honored even when the peer's buffer is
// full. Serialized by the caller (one writer at a time per fd). A
// TimedOut send leaves the stream mid-frame — the connection is dead to
// the protocol and the caller must drop it. Throws on oversized payloads
// or unexpected syscall failures.
[[nodiscard]] IoStatus send_frame_within(int fd,
                                         const std::vector<std::uint8_t>& payload,
                                         IoDeadline deadline);

// Reads a complete frame into `payload`, honoring both `stop` and
// `deadline` (whichever trips first). Throws lbs::Error on a mis-framed
// stream (length above kMaxFrameBytes) or a CRC mismatch — the caller
// should drop the connection.
[[nodiscard]] IoStatus recv_frame_within(int fd, std::vector<std::uint8_t>& payload,
                                         const std::atomic<bool>& stop,
                                         IoDeadline deadline, int slice_ms = 100);

// Deadline-free convenience wrappers (the pre-deadline API; false folds
// Closed and Stopped together).
[[nodiscard]] bool send_frame(int fd, const std::vector<std::uint8_t>& payload);
[[nodiscard]] bool recv_frame(int fd, std::vector<std::uint8_t>& payload,
                              const std::atomic<bool>& stop, int slice_ms = 100);

void close_fd(int fd);

}  // namespace lbs::service
