// Thin POSIX wrappers for the service's Unix-domain transport.
//
// lbsd listens on a filesystem socket (SOCK_STREAM over AF_UNIX): local,
// no network dependency, and the length-prefixed framing from
// service/protocol.hpp rides on a reliable byte stream. Everything here
// is poll-based: reads wait in poll() slices so a thread blocked on a
// quiet peer still notices `stop` (the server/client shutdown flag)
// within one slice, and both directions accept a per-call deadline so a
// stalled or half-dead peer surfaces as a typed IoStatus::TimedOut
// instead of hanging the caller forever (poll(2) carries the timeout; no
// SO_RCVTIMEO, which a mid-frame short read would quietly reset).
//
// Frame integrity: every frame is `u32 length | u32 crc32 | payload`.
// The CRC (support::crc32 over the payload) turns in-flight byte
// corruption — a chaos-injected fault or a genuinely hostile peer — into
// a detected protocol violation that drops the connection, never into a
// silently wrong plan.
//
// Fault injection: when the chaos harness has installed a
// service::FaultInjector (chaos.hpp), the raw read/write helpers consult
// it on every attempt; production pays one relaxed atomic load per
// attempt when none is set.
//
// Error policy follows the repo convention: conditions that are *data*
// (peer hung up, stop requested, deadline passed) are return values;
// violated invariants, corrupt frames, and unexpected syscall failures
// throw lbs::Error.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace lbs::service {

// Outcome of one framed I/O call.
enum class IoStatus : std::uint8_t {
  Ok,        // the full frame moved
  Closed,    // orderly EOF or peer reset (mid-frame EOF included)
  Stopped,   // the caller's stop flag was raised
  TimedOut,  // the deadline passed before the frame completed
};

// Per-call deadline: a steady-clock time point; no_deadline() waits
// forever (modulo the stop flag on reads).
using IoDeadline = std::chrono::steady_clock::time_point;
[[nodiscard]] constexpr IoDeadline no_deadline() { return IoDeadline::max(); }
[[nodiscard]] IoDeadline deadline_after_ms(std::uint32_t ms);

// Binds and listens on `path` (unlinking any stale socket file first).
// Returns the listening fd; throws lbs::Error on failure (e.g. a path
// longer than sockaddr_un allows).
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 64);

// Connects to a listening socket. Returns the fd, or -1 when the server
// is not there (no daemon, stale path); throws on unexpected errors.
[[nodiscard]] int connect_unix(const std::string& path);

// Accepts one connection, polling in `slice_ms` intervals so `stop` is
// honored. Returns the connection fd, or -1 on stop/listener close.
[[nodiscard]] int accept_with_stop(int listen_fd, const std::atomic<bool>& stop,
                                   int slice_ms = 100);

// Writes a complete frame (u32 length + u32 crc + payload), polling for
// writability so `deadline` is honored even when the peer's buffer is
// full. Serialized by the caller (one writer at a time per fd). A
// TimedOut send leaves the stream mid-frame — the connection is dead to
// the protocol and the caller must drop it. Throws on oversized payloads
// or unexpected syscall failures.
[[nodiscard]] IoStatus send_frame_within(int fd,
                                         const std::vector<std::uint8_t>& payload,
                                         IoDeadline deadline);

// Reads a complete frame into `payload`, honoring both `stop` and
// `deadline` (whichever trips first). Throws lbs::Error on a mis-framed
// stream (length above kMaxFrameBytes) or a CRC mismatch — the caller
// should drop the connection.
[[nodiscard]] IoStatus recv_frame_within(int fd, std::vector<std::uint8_t>& payload,
                                         const std::atomic<bool>& stop,
                                         IoDeadline deadline, int slice_ms = 100);

// Deadline-free convenience wrappers (the pre-deadline API; false folds
// Closed and Stopped together).
[[nodiscard]] bool send_frame(int fd, const std::vector<std::uint8_t>& payload);
[[nodiscard]] bool recv_frame(int fd, std::vector<std::uint8_t>& payload,
                              const std::atomic<bool>& stop, int slice_ms = 100);

void close_fd(int fd);

}  // namespace lbs::service
