// Thin POSIX wrappers for the service's Unix-domain transport.
//
// lbsd listens on a filesystem socket (SOCK_STREAM over AF_UNIX): local,
// no network dependency, and the length-prefixed framing from
// service/protocol.hpp rides on a reliable byte stream. Everything here
// is blocking-with-poll: reads wait in poll() slices so a thread blocked
// on a quiet peer still notices `stop` (the server/client shutdown flag)
// within one slice instead of hanging in read(2) forever.
//
// Error policy follows the repo convention: conditions that are *data*
// (peer hung up, stop requested) are return values; violated invariants
// and unexpected syscall failures throw lbs::Error.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lbs::service {

// Binds and listens on `path` (unlinking any stale socket file first).
// Returns the listening fd; throws lbs::Error on failure (e.g. a path
// longer than sockaddr_un allows).
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 64);

// Connects to a listening socket. Returns the fd, or -1 when the server
// is not there (no daemon, stale path); throws on unexpected errors.
[[nodiscard]] int connect_unix(const std::string& path);

// Accepts one connection, polling in `slice_ms` intervals so `stop` is
// honored. Returns the connection fd, or -1 on stop/listener close.
[[nodiscard]] int accept_with_stop(int listen_fd, const std::atomic<bool>& stop,
                                   int slice_ms = 100);

// Writes a complete frame (u32 length + payload). Serialized by the
// caller (one writer at a time per fd). Returns false when the peer is
// gone (EPIPE/ECONNRESET); throws on other failures or oversized
// payloads. SIGPIPE is suppressed (MSG_NOSIGNAL).
[[nodiscard]] bool send_frame(int fd, const std::vector<std::uint8_t>& payload);

// Reads a complete frame into `payload`. Returns false on orderly EOF,
// peer reset, or stop. Throws lbs::Error on a mis-framed stream (length
// above kMaxFrameBytes) — the caller should drop the connection.
[[nodiscard]] bool recv_frame(int fd, std::vector<std::uint8_t>& payload,
                              const std::atomic<bool>& stop, int slice_ms = 100);

void close_fd(int fd);

}  // namespace lbs::service
