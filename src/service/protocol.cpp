#include "service/protocol.hpp"

#include <cstring>

#include "support/error.hpp"

namespace lbs::service {

namespace {

constexpr std::uint32_t kMaxProcessors = 1u << 20;
constexpr std::uint32_t kMaxSamples = 1u << 20;

core::Algorithm decode_algorithm(std::uint8_t raw) {
  LBS_CHECK_MSG(raw <= static_cast<std::uint8_t>(core::Algorithm::Uniform),
                "wire: unknown algorithm id");
  return static_cast<core::Algorithm>(raw);
}

void encode_cost_spec(WireWriter& out, const model::CostSpec& spec, int depth) {
  LBS_CHECK_MSG(depth < kMaxCostSpecDepth, "wire: cost spec nests too deep");
  out.put_u8(static_cast<std::uint8_t>(spec.kind));
  switch (spec.kind) {
    case model::CostSpec::Kind::Zero:
      break;
    case model::CostSpec::Kind::Linear:
      out.put_f64(spec.a);
      break;
    case model::CostSpec::Kind::Affine:
      out.put_f64(spec.a);
      out.put_f64(spec.b);
      break;
    case model::CostSpec::Kind::Tabulated:
      out.put_u32(static_cast<std::uint32_t>(spec.samples.size()));
      for (const auto& [x, y] : spec.samples) {
        out.put_i64(x);
        out.put_f64(y);
      }
      break;
    case model::CostSpec::Kind::Chunked:
      out.put_f64(spec.a);
      out.put_f64(spec.b);
      out.put_i64(spec.chunk);
      break;
    case model::CostSpec::Kind::Scaled:
      LBS_CHECK_MSG(spec.inner != nullptr, "wire: scaled spec without inner");
      out.put_f64(spec.a);
      encode_cost_spec(out, *spec.inner, depth + 1);
      break;
  }
}

model::CostSpec decode_cost_spec(WireReader& in, int depth) {
  LBS_CHECK_MSG(depth < kMaxCostSpecDepth, "wire: cost spec nests too deep");
  std::uint8_t raw_kind = in.read_u8();
  LBS_CHECK_MSG(raw_kind <= static_cast<std::uint8_t>(model::CostSpec::Kind::Scaled),
                "wire: unknown cost kind");
  model::CostSpec spec;
  spec.kind = static_cast<model::CostSpec::Kind>(raw_kind);
  switch (spec.kind) {
    case model::CostSpec::Kind::Zero:
      break;
    case model::CostSpec::Kind::Linear:
      spec.a = in.read_f64();
      break;
    case model::CostSpec::Kind::Affine:
      spec.a = in.read_f64();
      spec.b = in.read_f64();
      break;
    case model::CostSpec::Kind::Tabulated: {
      std::uint32_t count = in.read_u32();
      LBS_CHECK_MSG(count <= kMaxSamples, "wire: implausible sample count");
      spec.samples.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        long long x = in.read_i64();
        double y = in.read_f64();
        spec.samples.emplace_back(x, y);
      }
      break;
    }
    case model::CostSpec::Kind::Chunked:
      spec.a = in.read_f64();
      spec.b = in.read_f64();
      spec.chunk = in.read_i64();
      break;
    case model::CostSpec::Kind::Scaled:
      spec.a = in.read_f64();
      spec.inner = std::make_shared<const model::CostSpec>(
          decode_cost_spec(in, depth + 1));
      break;
  }
  return spec;
}

void put_header(WireWriter& out, MessageType type, std::uint64_t id) {
  out.put_u8(kProtocolVersion);
  out.put_u8(static_cast<std::uint8_t>(type));
  out.put_u64(id);
}

}  // namespace

std::vector<long long> PlanResponse::displacements() const {
  std::vector<long long> out;
  out.reserve(counts.size());
  long long offset = 0;
  for (long long count : counts) {
    out.push_back(offset);
    offset += count;
  }
  return out;
}

std::uint8_t WireReader::read_u8() {
  LBS_CHECK_MSG(pos_ + 1 <= size_, "wire: truncated message");
  return data_[pos_++];
}

std::uint32_t WireReader::read_u32() {
  LBS_CHECK_MSG(pos_ + 4 <= size_, "wire: truncated message");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

std::uint64_t WireReader::read_u64() {
  LBS_CHECK_MSG(pos_ + 8 <= size_, "wire: truncated message");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

long long WireReader::read_i64() {
  return static_cast<long long>(read_u64());
}

double WireReader::read_f64() {
  std::uint64_t bits = read_u64();
  double value;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string WireReader::read_string() {
  std::uint32_t length = read_u32();
  LBS_CHECK_MSG(pos_ + length <= size_, "wire: truncated string");
  std::string value(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return value;
}

void WireReader::expect_end() const {
  LBS_CHECK_MSG(pos_ == size_, "wire: trailing bytes after message");
}

void WireWriter::put_u8(std::uint8_t value) { buffer_.push_back(value); }

void WireWriter::put_u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void WireWriter::put_u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void WireWriter::put_i64(long long value) {
  put_u64(static_cast<std::uint64_t>(value));
}

void WireWriter::put_f64(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(bits);
}

void WireWriter::put_string(const std::string& value) {
  put_u32(static_cast<std::uint32_t>(value.size()));
  for (char c : value) buffer_.push_back(static_cast<std::uint8_t>(c));
}

void encode_cost(WireWriter& out, const model::Cost& cost) {
  encode_cost_spec(out, cost.spec(), 0);
}

model::Cost decode_cost(WireReader& in) {
  return model::Cost::from_spec(decode_cost_spec(in, 0));
}

void encode_platform(WireWriter& out, const model::Platform& platform) {
  out.put_u32(static_cast<std::uint32_t>(platform.size()));
  for (int i = 0; i < platform.size(); ++i) {
    encode_cost(out, platform[i].comm);
    encode_cost(out, platform[i].comp);
  }
}

model::Platform decode_platform(WireReader& in) {
  std::uint32_t count = in.read_u32();
  LBS_CHECK_MSG(count >= 1 && count <= kMaxProcessors,
                "wire: implausible processor count");
  model::Platform platform;
  platform.processors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    model::Processor proc;
    proc.label = std::string("P").append(std::to_string(i));
    proc.comm = decode_cost(in);
    proc.comp = decode_cost(in);
    platform.processors.push_back(std::move(proc));
  }
  return platform;
}

std::vector<std::uint8_t> encode_plan_request(const PlanRequest& request) {
  WireWriter out;
  put_header(out, MessageType::PlanRequest, request.id);
  out.put_u8(static_cast<std::uint8_t>(request.algorithm));
  out.put_i64(request.items);
  out.put_u64(request.epoch);
  encode_platform(out, request.platform);
  return out.take();
}

std::vector<std::uint8_t> encode_plan_response(const PlanResponse& response) {
  WireWriter out;
  put_header(out, MessageType::PlanResponse, response.id);
  out.put_u8(static_cast<std::uint8_t>(response.status));
  switch (response.status) {
    case PlanStatus::Ok: {
      out.put_u8(static_cast<std::uint8_t>(response.algorithm_used));
      out.put_f64(response.predicted_makespan);
      out.put_i64(response.dp_cells_evaluated);
      std::uint8_t flags = 0;
      if (response.cache_hit) flags |= 1;
      if (response.coalesced) flags |= 2;
      if (response.has_optimality_bound) flags |= 4;
      out.put_u8(flags);
      out.put_f64(response.optimality_gap);
      out.put_u32(static_cast<std::uint32_t>(response.counts.size()));
      for (long long count : response.counts) out.put_i64(count);
      break;
    }
    case PlanStatus::Rejected:
      out.put_u32(response.retry_after_ms);
      break;
    case PlanStatus::WrongEpoch:
      encode_membership_view(out, response.current_view);
      break;
    case PlanStatus::Error:
    case PlanStatus::Disconnected:
    case PlanStatus::Timeout:
    case PlanStatus::BreakerOpen:
      out.put_string(response.message);
      break;
  }
  return out.take();
}

std::vector<std::uint8_t> encode_control(MessageType type, std::uint64_t id) {
  WireWriter out;
  put_header(out, type, id);
  return out.take();
}

std::vector<std::uint8_t> encode_stats_response(std::uint64_t id,
                                                const std::string& json) {
  WireWriter out;
  put_header(out, MessageType::StatsResponse, id);
  out.put_string(json);
  return out.take();
}

void encode_membership_view(WireWriter& out, const MembershipView& view) {
  out.put_u64(view.epoch);
  out.put_u32(static_cast<std::uint32_t>(view.members.size()));
  for (const Member& member : view.members) {
    out.put_u8(static_cast<std::uint8_t>(member.state));
    out.put_string(member.endpoint.to_string());
  }
}

MembershipView decode_membership_view(WireReader& in) {
  MembershipView view;
  view.epoch = in.read_u64();
  std::uint32_t count = in.read_u32();
  LBS_CHECK_MSG(count <= kMaxViewMembers, "wire: implausible member count");
  view.members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Member member;
    std::uint8_t raw_state = in.read_u8();
    LBS_CHECK_MSG(raw_state <= static_cast<std::uint8_t>(ReplicaState::Draining),
                  "wire: unknown replica state");
    member.state = static_cast<ReplicaState>(raw_state);
    member.endpoint = Endpoint::parse(in.read_string());
    view.members.push_back(std::move(member));
  }
  validate_view(view);
  return view;
}

std::vector<std::uint8_t> encode_membership_update(std::uint64_t id,
                                                   const MembershipView& view) {
  WireWriter out;
  put_header(out, MessageType::MembershipUpdate, id);
  encode_membership_view(out, view);
  return out.take();
}

std::vector<std::uint8_t> encode_membership_ack(std::uint64_t id,
                                                const MembershipView& view) {
  WireWriter out;
  put_header(out, MessageType::MembershipAck, id);
  encode_membership_view(out, view);
  return out.take();
}

std::vector<std::uint8_t> encode_snapshot_range(std::uint64_t id,
                                                const MembershipView& view,
                                                const std::string& owner) {
  WireWriter out;
  put_header(out, MessageType::SnapshotRange, id);
  encode_membership_view(out, view);
  out.put_string(owner);
  return out.take();
}

std::vector<std::uint8_t> encode_snapshot_range_data(
    std::uint64_t id, const std::vector<SnapshotEntry>& entries) {
  LBS_CHECK_MSG(entries.size() <= kMaxSnapshotEntries,
                "wire: too many handoff entries");
  WireWriter out;
  put_header(out, MessageType::SnapshotRangeData, id);
  out.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const SnapshotEntry& entry : entries) encode_snapshot_entry(out, entry);
  return out.take();
}

Message decode_message(const std::uint8_t* data, std::size_t size) {
  WireReader in(data, size);
  std::uint8_t version = in.read_u8();
  LBS_CHECK_MSG(version == kProtocolVersion, "wire: protocol version mismatch");
  std::uint8_t raw_type = in.read_u8();
  LBS_CHECK_MSG(raw_type >= static_cast<std::uint8_t>(MessageType::PlanRequest) &&
                    raw_type <= static_cast<std::uint8_t>(MessageType::SnapshotRangeData),
                "wire: unknown message type");

  Message message;
  message.type = static_cast<MessageType>(raw_type);
  message.id = in.read_u64();

  switch (message.type) {
    case MessageType::PlanRequest: {
      PlanRequest request;
      request.id = message.id;
      request.algorithm = decode_algorithm(in.read_u8());
      request.items = in.read_i64();
      request.epoch = in.read_u64();
      request.platform = decode_platform(in);
      message.plan_request = std::move(request);
      break;
    }
    case MessageType::PlanResponse: {
      PlanResponse response;
      response.id = message.id;
      std::uint8_t raw_status = in.read_u8();
      LBS_CHECK_MSG(raw_status <= static_cast<std::uint8_t>(PlanStatus::WrongEpoch),
                    "wire: unknown plan status");
      response.status = static_cast<PlanStatus>(raw_status);
      switch (response.status) {
        case PlanStatus::Ok: {
          response.algorithm_used = decode_algorithm(in.read_u8());
          response.predicted_makespan = in.read_f64();
          response.dp_cells_evaluated = in.read_i64();
          std::uint8_t flags = in.read_u8();
          response.cache_hit = (flags & 1) != 0;
          response.coalesced = (flags & 2) != 0;
          response.has_optimality_bound = (flags & 4) != 0;
          response.optimality_gap = in.read_f64();
          std::uint32_t count = in.read_u32();
          LBS_CHECK_MSG(count <= kMaxProcessors, "wire: implausible count vector");
          response.counts.reserve(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            response.counts.push_back(in.read_i64());
          }
          break;
        }
        case PlanStatus::Rejected:
          response.retry_after_ms = in.read_u32();
          break;
        case PlanStatus::WrongEpoch:
          response.current_view = decode_membership_view(in);
          break;
        case PlanStatus::Error:
        case PlanStatus::Disconnected:
        case PlanStatus::Timeout:
        case PlanStatus::BreakerOpen:
          response.message = in.read_string();
          break;
      }
      message.plan_response = std::move(response);
      break;
    }
    case MessageType::StatsResponse:
      message.text = in.read_string();
      break;
    case MessageType::MembershipUpdate:
    case MessageType::MembershipAck:
      message.view = decode_membership_view(in);
      break;
    case MessageType::SnapshotRange:
      message.view = decode_membership_view(in);
      message.text = in.read_string();
      break;
    case MessageType::SnapshotRangeData: {
      std::uint32_t count = in.read_u32();
      LBS_CHECK_MSG(count <= kMaxSnapshotEntries,
                    "wire: implausible handoff entry count");
      message.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        message.entries.push_back(decode_snapshot_entry(in));
      }
      break;
    }
    case MessageType::Ping:
    case MessageType::Pong:
    case MessageType::StatsRequest:
    case MessageType::Shutdown:
    case MessageType::ShutdownAck:
      break;
  }
  in.expect_end();
  return message;
}

Message decode_message(const std::vector<std::uint8_t>& payload) {
  return decode_message(payload.data(), payload.size());
}

}  // namespace lbs::service
