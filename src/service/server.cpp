#include "service/server.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/socket.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {

// service.request span arg2: how the request was satisfied.
constexpr long long kServedFresh = 0;
constexpr long long kServedFromCache = 1;
constexpr long long kServedCoalesced = 2;

}  // namespace

bool Server::Connection::send(const std::vector<std::uint8_t>& payload) {
  std::lock_guard lock(write_mu);
  if (fd < 0) return false;
  IoDeadline deadline = send_timeout_ms > 0 ? deadline_after_ms(send_timeout_ms)
                                            : no_deadline();
  IoStatus status = send_frame_within(fd, payload, deadline);
  if (status == IoStatus::TimedOut) {
    // A peer that cannot absorb one frame within the reply budget is
    // wedged or gone; drop the connection rather than block the sender.
    close_fd(fd);
    fd = -1;
  }
  return status == IoStatus::Ok;
}

void Server::Connection::close() {
  std::lock_guard lock(write_mu);
  if (fd >= 0) {
    close_fd(fd);
    fd = -1;
  }
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_shards, options_.cache_capacity_per_shard),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::global_metrics()),
      // The dispatcher participates in every for_range, so a pool of
      // (dp_workers - 1) background threads yields dp_workers-way solves.
      pool_((options_.dp_workers > 0 ? options_.dp_workers
                                     : support::default_parallelism()) -
            1),
      queue_(options_.max_queue) {
  if (!options_.endpoint.valid()) {
    LBS_CHECK_MSG(!options_.socket_path.empty(),
                  "server needs a socket path or an endpoint");
    options_.endpoint = Endpoint::unix_path(options_.socket_path);
  }
  LBS_CHECK_MSG(options_.max_queue >= 1, "server queue needs capacity >= 1");
  LBS_CHECK_MSG(options_.max_batch >= 1, "server batch size must be >= 1");
  LBS_CHECK_MSG(options_.max_processors >= 1, "max_processors must be >= 1");
  cache_.set_tracer(options_.tracer);
  cache_.set_metrics(metrics_);
}

Server::~Server() { stop(); }

obs::Tracer* Server::tracer() const {
  return options_.tracer != nullptr ? options_.tracer : obs::global_tracer();
}

void Server::start() {
  LBS_CHECK_MSG(!started_, "server already started");
  if (!options_.warm_start_path.empty()) warm_start();
  listen_fd_ = listen_endpoint(options_.endpoint);
  // Bootstrap membership AFTER the endpoint is resolved (a TCP port-0
  // listener learns its port above) so this replica can find itself in
  // the view. No pulls at bootstrap: there is no older view to reshard
  // from, and warm state comes from the snapshot file.
  if (!options_.membership_path.empty()) {
    try {
      (void)adopt_view(read_view_file(options_.membership_path),
                       /*allow_pull=*/false);
    } catch (const lbs::Error& error) {
      metrics_->counter("service.membership.file_rejected").add();
      std::fprintf(stderr, "lbsd: membership file rejected (%s): epoch 0\n",
                   error.what());
    }
  }
  started_ = true;
  stop_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(snapshot_wake_mu_);
    snapshot_stop_ = false;
  }
  {
    std::lock_guard lock(membership_wake_mu_);
    membership_stop_ = false;
  }
  accept_thread_ = std::thread(&Server::accept_loop, this);
  dispatch_thread_ = std::thread(&Server::dispatch_loop, this);
  if (!options_.snapshot_path.empty() && options_.snapshot_interval_ms > 0) {
    snapshot_thread_ = std::thread(&Server::snapshot_loop, this);
  }
  if (!options_.membership_path.empty() && options_.membership_poll_ms > 0) {
    membership_thread_ = std::thread(&Server::membership_watch_loop, this);
  }
}

void Server::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  queue_.close();
  {
    std::lock_guard lock(snapshot_wake_mu_);
    snapshot_stop_ = true;
  }
  snapshot_wake_cv_.notify_all();
  {
    std::lock_guard lock(membership_wake_mu_);
    membership_stop_ = true;
  }
  membership_wake_cv_.notify_all();
  if (membership_thread_.joinable()) membership_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(connections_mu_);
    for (auto& thread : connection_threads_) {
      if (thread.joinable()) thread.join();
    }
    connection_threads_.clear();
  }
  // The dispatcher drains the closed queue before exiting: every accepted
  // solve is answered over its still-open connection. Only after the join
  // is it safe to close the fds.
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  if (!options_.snapshot_path.empty()) {
    // Final on-drain snapshot: the cache now holds every plan this run
    // solved, so a restart warm-starts with all of them.
    try {
      snapshot_now();
    } catch (const lbs::Error& error) {
      metrics_->counter("service.snapshot.write_failures").add();
      std::fprintf(stderr, "lbsd: final snapshot failed: %s\n", error.what());
    }
  }
  {
    std::lock_guard lock(connections_mu_);
    for (auto& connection : open_connections_) connection->close();
    open_connections_.clear();
  }
  close_fd(listen_fd_);
  listen_fd_ = -1;
  if (options_.endpoint.kind == Endpoint::Kind::Unix) {
    ::unlink(options_.endpoint.path.c_str());
  }
  started_ = false;
}

void Server::record_snapshot_span(double start, const SnapshotStats& stats,
                                  bool restore) const {
  if (obs::Tracer* t = tracer()) {
    obs::TraceEvent event;
    event.type = obs::EventType::ServiceSnapshot;
    event.start = start;
    event.duration = obs::wall_now() - start;
    event.arg0 = static_cast<long long>(stats.entries);
    event.arg1 = static_cast<long long>(stats.bytes);
    event.arg2 = restore ? 1 : 0;
    t->record(event);
  }
}

void Server::warm_start() {
  const double started_at = obs::wall_now();
  std::vector<SnapshotEntry> entries;
  try {
    entries = read_snapshot(options_.warm_start_path);
  } catch (const lbs::Error& error) {
    // Any defect — missing file, torn write, foreign bytes, stale
    // version — means cold start, loudly. Warm state is an optimization;
    // it must never be able to take the service down or poison the cache.
    metrics_->counter("service.snapshot.rejected").add();
    std::fprintf(stderr, "lbsd: warm start rejected (%s): cold start\n",
                 error.what());
    return;
  }
  cache_.restore_entries(entries);
  metrics_->counter("service.snapshot.restores").add();
  metrics_->counter("service.snapshot.restored_entries")
      .add(static_cast<std::uint64_t>(entries.size()));
  SnapshotStats stats;
  stats.entries = entries.size();
  record_snapshot_span(started_at, stats, /*restore=*/true);
}

SnapshotStats Server::snapshot_now() {
  LBS_CHECK_MSG(!options_.snapshot_path.empty(),
                "snapshot_now needs options.snapshot_path");
  const double started_at = obs::wall_now();
  std::lock_guard lock(snapshot_write_mu_);
  SnapshotStats stats =
      write_snapshot(options_.snapshot_path, cache_.export_entries());
  metrics_->counter("service.snapshot.writes").add();
  metrics_->histogram("service.snapshot.entries")
      .observe(static_cast<double>(stats.entries));
  metrics_->histogram("service.snapshot.seconds")
      .observe(obs::wall_now() - started_at);
  record_snapshot_span(started_at, stats, /*restore=*/false);
  return stats;
}

void Server::snapshot_loop() {
  const auto interval = std::chrono::milliseconds(options_.snapshot_interval_ms);
  std::unique_lock lock(snapshot_wake_mu_);
  while (!snapshot_stop_) {
    if (snapshot_wake_cv_.wait_for(lock, interval,
                                   [this] { return snapshot_stop_; })) {
      break;  // stop(): the final on-drain snapshot supersedes this tick
    }
    lock.unlock();
    try {
      snapshot_now();
    } catch (const lbs::Error& error) {
      // Disk trouble must not kill the serving path; count it, log it,
      // and try again next tick.
      metrics_->counter("service.snapshot.write_failures").add();
      std::fprintf(stderr, "lbsd: snapshot failed: %s\n", error.what());
    }
    lock.lock();
  }
}

MembershipView Server::membership_view() const {
  std::lock_guard lock(view_mu_);
  return *view_;
}

bool Server::adopt_view(const MembershipView& update, bool allow_pull) {
  // adopt_mu_ serializes whole adoptions (compare, pull, publish) so two
  // racing updates cannot interleave their pulls; view_mu_ stays cheap.
  std::lock_guard adoption(adopt_mu_);
  MembershipView current;
  {
    std::lock_guard lock(view_mu_);
    current = *view_;
  }
  MembershipView next = current;
  if (!adopt(next, update)) return false;

  const double started_at = obs::wall_now();
  std::size_t pulled = 0;
  if (allow_pull) {
    const std::string self = options_.endpoint.to_string();
    const Member* self_now = next.find(options_.endpoint);
    const bool now_eligible =
        self_now != nullptr && self_now->state == ReplicaState::Serving;
    const Member* self_before = current.find(options_.endpoint);
    const bool was_eligible = current.epoch != 0 && self_before != nullptr &&
                              self_before->state == ReplicaState::Serving;
    std::vector<Endpoint> donors;
    if (now_eligible && !was_eligible) {
      // This replica just became route-eligible (a join's serving phase):
      // its new partition is scattered across every serving peer.
      for (const Member& member : next.members) {
        if (member.state == ReplicaState::Serving &&
            member.endpoint.to_string() != self) {
          donors.push_back(member.endpoint);
        }
      }
    } else if (now_eligible && current.epoch != 0) {
      // A peer moved serving -> draining: the keys it owned now land on
      // the survivors. Pull this replica's share while the drainer still
      // has its cache (the donor path is stateless, so it serves pulls
      // regardless of its own view).
      for (const Member& member : next.members) {
        if (member.state != ReplicaState::Draining) continue;
        const Member* before = current.find(member.endpoint);
        if (before != nullptr && before->state == ReplicaState::Serving) {
          donors.push_back(member.endpoint);
        }
      }
    }
    // Pulls happen BEFORE the view is published: until they finish this
    // replica keeps answering by the old epoch, and the moment the new
    // ring routes a key here the cache is already warm — zero re-solves.
    for (const Endpoint& donor : donors) pulled += pull_partition(next, donor);
  }
  {
    std::lock_guard lock(view_mu_);
    view_ = std::make_shared<const MembershipView>(next);
  }
  membership_updates_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("service.membership.updates").add();
  if (obs::Tracer* t = tracer()) {
    obs::TraceEvent event;
    event.type = obs::EventType::ServiceMembership;
    event.start = started_at;
    event.duration = obs::wall_now() - started_at;
    event.arg0 = static_cast<long long>(next.epoch);
    event.arg1 = static_cast<long long>(next.members.size());
    event.arg2 = static_cast<long long>(pulled);
    t->record(event);
  }
  return true;
}

std::vector<SnapshotEntry> Server::entries_owned_by(
    const MembershipView& view, const std::string& owner) const {
  std::vector<SnapshotEntry> out;
  support::HashRing ring = ring_of(view);
  if (ring.node_count() == 0) return out;
  // Keep the encoded reply under the frame bound; a dropped tail costs
  // the joiner a few re-solves, not correctness.
  const std::size_t budget = kMaxFrameBytes - 4096;
  std::size_t used = 0;
  for (auto& entry : cache_.export_entries()) {
    const std::uint64_t hash = core::PlanKeyHash{}(entry.first);
    if (ring.node_for(hash) != owner) continue;
    const std::size_t bytes = 64 + entry.first.costs.size() * 8 +
                              entry.second.distribution.counts.size() * 8 +
                              entry.second.predicted_finish.size() * 8;
    if (used + bytes > budget) break;
    used += bytes;
    out.push_back(std::move(entry));
  }
  return out;
}

std::size_t Server::pull_partition(const MembershipView& view,
                                   const Endpoint& donor) {
  const double started_at = obs::wall_now();
  metrics_->counter("service.membership.handoff_pulls").add();
  const int fd = connect_endpoint(donor);
  if (fd < 0) {
    metrics_->counter("service.membership.handoff_failures").add();
    std::fprintf(stderr, "lbsd: handoff pull from %s failed: unreachable\n",
                 donor.to_string().c_str());
    return 0;
  }
  std::size_t restored = 0;
  try {
    const IoDeadline deadline = deadline_after_ms(options_.handoff_timeout_ms);
    const std::vector<std::uint8_t> request =
        encode_snapshot_range(1, view, options_.endpoint.to_string());
    if (send_frame_within(fd, request, deadline) != IoStatus::Ok) {
      throw lbs::Error("handoff: request not sent before the deadline");
    }
    std::vector<std::uint8_t> reply;
    if (recv_frame_within(fd, reply, stop_, deadline) != IoStatus::Ok) {
      throw lbs::Error("handoff: no reply before the deadline");
    }
    Message message = decode_message(reply);
    LBS_CHECK_MSG(message.type == MessageType::SnapshotRangeData,
                  "handoff: unexpected reply type");
    cache_.restore_entries(message.entries);
    restored = message.entries.size();
    handoff_entries_.fetch_add(restored, std::memory_order_relaxed);
    metrics_->counter("service.membership.handoff_entries")
        .add(static_cast<std::uint64_t>(restored));
    metrics_->histogram("service.membership.handoff_seconds")
        .observe(obs::wall_now() - started_at);
  } catch (const lbs::Error& error) {
    // A failed pull degrades the warm start, never the reshard: the keys
    // involved just re-solve on first touch.
    metrics_->counter("service.membership.handoff_failures").add();
    std::fprintf(stderr, "lbsd: handoff pull from %s failed: %s\n",
                 donor.to_string().c_str(), error.what());
  }
  close_fd(fd);
  return restored;
}

void Server::membership_watch_loop() {
  const auto interval = std::chrono::milliseconds(options_.membership_poll_ms);
  auto stamp_of = [this]() -> std::pair<long long, long long> {
    struct ::stat st {};
    if (::stat(options_.membership_path.c_str(), &st) != 0) return {-1, -1};
    return {static_cast<long long>(st.st_mtim.tv_sec) * 1000000000LL +
                st.st_mtim.tv_nsec,
            static_cast<long long>(st.st_size)};
  };
  // Start "unknown" so the first poll re-reads the file: adopt() dedups
  // by epoch, so the redundant read is one parse, not a flap.
  std::pair<long long, long long> last{-2, -2};
  std::unique_lock lock(membership_wake_mu_);
  while (!membership_stop_) {
    if (membership_wake_cv_.wait_for(lock, interval,
                                     [this] { return membership_stop_; })) {
      break;
    }
    lock.unlock();
    const auto stamp = stamp_of();
    if (stamp != last && stamp.first >= 0) {
      last = stamp;
      try {
        (void)adopt_view(read_view_file(options_.membership_path),
                         /*allow_pull=*/true);
      } catch (const lbs::Error& error) {
        // A torn or bad file must not move the view; the atomic
        // write_view_file makes this a misconfiguration signal.
        metrics_->counter("service.membership.file_rejected").add();
        std::fprintf(stderr, "lbsd: membership file rejected: %s\n",
                     error.what());
      }
    }
    lock.lock();
  }
}

void Server::request_stop() {
  {
    std::lock_guard lock(stop_request_mu_);
    stop_requested_ = true;
  }
  stop_request_cv_.notify_all();
}

bool Server::stop_requested() const {
  std::lock_guard lock(stop_request_mu_);
  return stop_requested_;
}

bool Server::wait_until_stop_requested_for(int timeout_ms) {
  std::unique_lock lock(stop_request_mu_);
  return stop_request_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                   [this] { return stop_requested_; });
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = accept_with_stop(listen_fd_, stop_);
    if (fd < 0) break;
    connections_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("service.connections").add();
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    connection->send_timeout_ms = options_.reply_timeout_ms;
    std::lock_guard lock(connections_mu_);
    open_connections_.push_back(connection);
    connection_threads_.emplace_back(&Server::connection_loop, this, connection);
  }
}

void Server::connection_loop(std::shared_ptr<Connection> connection) {
  std::vector<std::uint8_t> payload;
  while (true) {
    IoStatus status = IoStatus::Closed;
    try {
      status = recv_frame_within(connection->fd, payload, stop_, no_deadline());
    } catch (const lbs::Error&) {
      // Mis-framed or corrupted stream (bad length, checksum mismatch):
      // drop the connection.
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics_->counter("service.protocol_errors").add();
      break;
    }
    if (status == IoStatus::Stopped) {
      // Shutdown path: leave the fd OPEN. The dispatcher is still
      // draining accepted solves and must be able to answer waiters on
      // this connection; stop() closes it after the dispatch join.
      return;
    }
    if (status != IoStatus::Ok) break;  // peer closed
    try {
      handle_message(connection, decode_message(payload));
    } catch (const lbs::Error&) {
      // Protocol violation (bad version, unknown type, truncated body):
      // nothing sensible to answer — close.
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics_->counter("service.protocol_errors").add();
      break;
    }
  }
  connection->close();
}

void Server::handle_message(const std::shared_ptr<Connection>& connection,
                            Message&& message) {
  switch (message.type) {
    case MessageType::PlanRequest:
      handle_plan(connection, *std::move(message.plan_request));
      return;
    case MessageType::Ping:
      (void)connection->send(encode_control(MessageType::Pong, message.id));
      return;
    case MessageType::StatsRequest:
      (void)connection->send(encode_stats_response(message.id, stats_json()));
      return;
    case MessageType::Shutdown:
      (void)connection->send(encode_control(MessageType::ShutdownAck, message.id));
      request_stop();
      return;
    case MessageType::MembershipUpdate:
      // Adopt iff newer (an epoch-0 update is a pure query); the Ack
      // always carries this replica's view, so the sender learns where
      // this replica converged either way.
      (void)adopt_view(*message.view, /*allow_pull=*/true);
      (void)connection->send(
          encode_membership_ack(message.id, membership_view()));
      return;
    case MessageType::SnapshotRange:
      // Donor side of a reshard: ship whatever cache entries `owner`
      // owns under the proposed view's ring. Stateless on purpose — a
      // draining replica (or one that has not adopted the view yet)
      // still donates, which is what makes the pull-before-publish
      // ordering on the puller deadlock-free.
      (void)connection->send(encode_snapshot_range_data(
          message.id, entries_owned_by(*message.view, message.text)));
      return;
    case MessageType::PlanResponse:
    case MessageType::Pong:
    case MessageType::StatsResponse:
    case MessageType::ShutdownAck:
    case MessageType::MembershipAck:
    case MessageType::SnapshotRangeData:
      // Server-to-client messages arriving at the server: protocol abuse.
      throw lbs::Error("wire: client sent a server-side message type");
  }
}

void Server::respond_plan(const Waiter& waiter, PlanResponse response) {
  response.id = waiter.request_id;
  if (response.status == PlanStatus::Ok) response.coalesced = waiter.coalesced;
  double now = obs::wall_now();

  // Span and metrics BEFORE the reply leaves: the reply is the client's
  // synchronization point, so anyone who has the response is guaranteed
  // the request's span is already recorded.
  if (obs::Tracer* t = tracer()) {
    obs::TraceEvent event;
    event.type = obs::EventType::ServiceRequest;
    event.start = waiter.received_at;
    event.duration = now - waiter.received_at;
    event.arg0 = response.counts.empty()
                     ? 0
                     : [&] {
                         long long total = 0;
                         for (long long c : response.counts) total += c;
                         return total;
                       }();
    event.arg1 = static_cast<long long>(response.status);
    event.arg2 = response.cache_hit ? kServedFromCache
                 : waiter.coalesced ? kServedCoalesced
                                    : kServedFresh;
    t->record(event);
  }
  metrics_->histogram("service.request_seconds")
      .observe(now - waiter.received_at);

  (void)waiter.connection->send(encode_plan_response(response));
}

void Server::handle_plan(const std::shared_ptr<Connection>& connection,
                         PlanRequest&& request) {
  const double received_at = obs::wall_now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("service.requests").add();
  Waiter waiter{connection, request.id, /*coalesced=*/false, received_at};

  // Epoch gate. A request routed under an older view gets the current
  // view back instead of a plan — the client re-rings and retries where
  // the key now lives. Epoch 0 (an unversioned client) is always served
  // by a serving replica. A draining (or view-absent) replica still
  // serves cache hits and coalesce-attaches — "in-flight work" — but
  // redirects anything that would admit a NEW unique solve.
  std::shared_ptr<const MembershipView> view;
  {
    std::lock_guard lock(view_mu_);
    view = view_;
  }
  bool drain_new_keys = false;
  if (view->epoch != 0) {
    // ANY nonzero mismatch redirects — including a request epoch NEWER
    // than this replica's view. Serving such a request would apply the
    // old ring to a key the client already routes by the new one (the
    // classic reshard race: the admin's sequential pushes let a client
    // learn epoch N+1 before this replica does). The redirect carries
    // this replica's older view; the client answers by gossiping its
    // newer one back (membership_exchange), which triggers this
    // replica's handoff pull before the retry lands.
    if (request.epoch != 0 && request.epoch != view->epoch) {
      wrong_epoch_.fetch_add(1, std::memory_order_relaxed);
      metrics_->counter("service.membership.wrong_epoch").add();
      PlanResponse response;
      response.status = PlanStatus::WrongEpoch;
      response.current_view = *view;
      respond_plan(waiter, std::move(response));
      return;
    }
    const Member* self = view->find(options_.endpoint);
    drain_new_keys = self == nullptr || self->state != ReplicaState::Serving;
  }

  // Admission control: answer implausible requests before they cost
  // anything. (The wire layer already bounds processor count at 2^20;
  // these are the operator's tighter limits.)
  if (request.platform.size() > options_.max_processors ||
      request.items < 0 || request.items > options_.max_items) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("service.errors").add();
    PlanResponse response;
    response.status = PlanStatus::Error;
    response.message = request.items < 0 ? "negative item count"
                       : request.items > options_.max_items
                           ? "item count exceeds server max_items"
                           : "processor count exceeds server max_processors";
    respond_plan(waiter, std::move(response));
    return;
  }

  core::PlanKey key =
      core::make_plan_key(request.platform, request.items, request.algorithm);

  if (auto cached = cache_.lookup(key)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("service.cache_hits").add();
    PlanResponse response;
    response.status = PlanStatus::Ok;
    response.counts = cached->distribution.counts;
    response.predicted_makespan = cached->predicted_makespan;
    response.algorithm_used = cached->algorithm_used;
    response.dp_cells_evaluated = cached->dp_cells_evaluated;
    response.has_optimality_bound = cached->has_optimality_bound;
    response.optimality_gap = cached->optimality_gap;
    response.cache_hit = true;
    respond_plan(waiter, std::move(response));
    return;
  }

  {
    std::unique_lock lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // An identical solve is already queued or running: attach. This
      // request will be answered by that solve's completion — k identical
      // concurrent requests cost exactly one dp.solve.
      waiter.coalesced = true;
      it->second->waiters.push_back(std::move(waiter));
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      metrics_->counter("service.coalesced").add();
      return;
    }

    if (drain_new_keys) {
      lock.unlock();
      wrong_epoch_.fetch_add(1, std::memory_order_relaxed);
      metrics_->counter("service.membership.wrong_epoch").add();
      PlanResponse response;
      response.status = PlanStatus::WrongEpoch;
      response.current_view = *view;
      respond_plan(waiter, std::move(response));
      return;
    }

    auto pending = std::make_shared<PendingSolve>();
    pending->key = key;
    pending->platform = std::move(request.platform);
    pending->items = request.items;
    pending->algorithm = request.algorithm;
    pending->waiters.push_back(std::move(waiter));
    pending->enqueued_at = obs::wall_now();
    pending->depth_at_enqueue = queue_.size();
    if (!queue_.try_push(pending)) {
      lock.unlock();
      rejected_.fetch_add(1, std::memory_order_relaxed);
      metrics_->counter("service.rejected").add();
      PlanResponse response;
      response.status = PlanStatus::Rejected;
      response.retry_after_ms = options_.retry_after_ms;
      respond_plan(pending->waiters.front(), std::move(response));
      return;
    }
    inflight_.emplace(std::move(key), std::move(pending));
  }
  metrics_->histogram("service.queue_depth")
      .observe(static_cast<double>(queue_.size()));
}

void Server::dispatch_loop() {
  std::vector<PendingPtr> batch;
  while (true) {
    batch.clear();
    std::size_t got = queue_.pop_batch(batch, static_cast<std::size_t>(options_.max_batch));
    if (got == 0) break;  // queue closed and fully drained

    const double batch_start = obs::wall_now();
    obs::Tracer* t = tracer();
    if (t != nullptr) {
      for (const auto& pending : batch) {
        obs::TraceEvent event;
        event.type = obs::EventType::ServiceQueue;
        event.start = pending->enqueued_at;
        event.duration = batch_start - pending->enqueued_at;
        event.arg0 = static_cast<long long>(pending->depth_at_enqueue);
        event.arg1 = pending->items;
        t->record(event);
      }
    }
    for (const auto& pending : batch) {
      metrics_->histogram("service.queue_seconds")
          .observe(batch_start - pending->enqueued_at);
    }

    metrics_->counter("service.batches").add();
    metrics_->histogram("service.batch_size")
        .observe(static_cast<double>(batch.size()));

    if (batch.size() == 1) {
      solve_one(*batch.front());
    } else {
      pool_.for_range(0, static_cast<long long>(batch.size()), 1,
                      [&](long long begin, long long end) {
                        for (long long i = begin; i < end; ++i) {
                          solve_one(*batch[static_cast<std::size_t>(i)]);
                        }
                      });
    }

    if (t != nullptr) {
      obs::TraceEvent event;
      event.type = obs::EventType::ServiceBatch;
      event.start = batch_start;
      event.duration = obs::wall_now() - batch_start;
      event.arg0 = static_cast<long long>(batch.size());
      t->record(event);
    }
  }
}

void Server::solve_one(PendingSolve& pending) {
  if (options_.solve_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.solve_delay_ms));
  }

  PlanResponse base;
  try {
    core::PlannerOptions planner_options;
    planner_options.algorithm = pending.algorithm;
    planner_options.dp.threads = options_.dp_threads_per_solve;
    planner_options.tracer = options_.tracer;
    planner_options.metrics = metrics_;
    // No cache attached: intake already probed it, and the in-flight map
    // guarantees this is the only solve for the key. Filled below —
    // *before* the key leaves the map, so a request arriving in between
    // hits the cache instead of starting a second solve.
    core::ScatterPlan plan =
        core::plan_scatter(pending.platform, pending.items, planner_options);
    cache_.insert(pending.key, plan);
    solved_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("service.solved").add();
    base.status = PlanStatus::Ok;
    base.counts = std::move(plan.distribution.counts);
    base.predicted_makespan = plan.predicted_makespan;
    base.algorithm_used = plan.algorithm_used;
    base.dp_cells_evaluated = plan.dp_cells_evaluated;
    base.has_optimality_bound = plan.has_optimality_bound;
    base.optimality_gap = plan.optimality_gap;
  } catch (const lbs::Error& error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("service.errors").add();
    base.status = PlanStatus::Error;
    base.message = error.what();
  }

  std::vector<Waiter> waiters;
  {
    std::lock_guard lock(inflight_mu_);
    waiters = std::move(pending.waiters);
    pending.waiters.clear();
    inflight_.erase(pending.key);
  }
  for (const Waiter& waiter : waiters) {
    respond_plan(waiter, base);
  }
}

Server::Counters Server::counters() const {
  Counters out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.solved = solved_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.connections = connections_.load(std::memory_order_relaxed);
  out.membership_updates = membership_updates_.load(std::memory_order_relaxed);
  out.wrong_epoch = wrong_epoch_.load(std::memory_order_relaxed);
  out.handoff_entries = handoff_entries_.load(std::memory_order_relaxed);
  return out;
}

std::string Server::stats_json() const {
  Counters c = counters();
  core::ShardedPlanCache::Stats cache_stats = cache_.stats();
  MembershipView view = membership_view();
  const char* state = "serving";
  if (view.epoch != 0) {
    const Member* self = view.find(options_.endpoint);
    state = self != nullptr ? to_string(self->state) : "absent";
  }
  std::ostringstream out;
  out << "{\"service\": {"
      << "\"requests\": " << c.requests << ", \"cache_hits\": " << c.cache_hits
      << ", \"coalesced\": " << c.coalesced << ", \"solved\": " << c.solved
      << ", \"rejected\": " << c.rejected << ", \"errors\": " << c.errors
      << ", \"connections\": " << c.connections
      << ", \"queue_depth\": " << queue_.size() << "}, \"membership\": {"
      << "\"epoch\": " << view.epoch << ", \"state\": \"" << state
      << "\", \"members\": " << view.members.size()
      << ", \"updates\": " << c.membership_updates
      << ", \"wrong_epoch\": " << c.wrong_epoch
      << ", \"handoff_entries\": " << c.handoff_entries << "}, \"cache\": {"
      << "\"hits\": " << cache_stats.hits << ", \"misses\": " << cache_stats.misses
      << ", \"evictions\": " << cache_stats.evictions
      << ", \"size\": " << cache_.size() << ", \"shards\": " << cache_.shards()
      << "}, \"metrics\": " << metrics_->json_snapshot() << "}";
  return out.str();
}

}  // namespace lbs::service
