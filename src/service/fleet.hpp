// FleetClient — consistent-hash routing over N lbsd replicas.
//
// One lbsd is a single point of failure and a single cache; a fleet of
// N replicas behind naive round-robin would be N duplicated caches (every
// replica eventually solves every hot key). FleetClient instead routes
// each request by its PlanKey over a support::HashRing keyed on the
// replicas' endpoints, so the fleet's ShardedPlanCaches PARTITION the key
// space: a key has exactly one home replica, aggregate cache capacity is
// the sum of the replicas', and a warm key is warm fleet-wide because
// every client routes it to the same place. The same key → same replica
// property is also what keeps request coalescing effective under a fleet:
// k identical concurrent requests from many FleetClients still meet in
// one replica's in-flight map and cost one dp.solve.
//
// Failure handling is layered:
//   - each replica gets its own service::Client, with the per-connection
//     deadline/backoff/circuit-breaker machinery from client.hpp;
//   - when a replica's breaker is open, its dial fails, or a request
//     comes back with a transport status (Disconnected / Timeout /
//     BreakerOpen), the request REROUTES to the next distinct node on
//     the ring — the deterministic failover order, so even failover
//     traffic concentrates on one substitute replica and stays
//     cacheable. A replica that refused a dial is marked down for
//     down_retry_ms before the next dial attempt.
//   - when every candidate replica fails at transport level and
//     local_fallback is set, the plan degrades to the in-process
//     planner (same engine, flagged local_fallback), exactly like the
//     single-daemon client.
//
// Rejected (backpressure) is NOT rerouted by default: the home replica is
// alive, merely saturated; spilling its keys onto neighbors would melt
// the partition exactly when the fleet is hottest.
//
// Thread-safe: many threads may call plan() concurrently; per-replica
// clients are created on first use under a per-slot mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/socket.hpp"
#include "support/hash_ring.hpp"

namespace lbs::service {

struct FleetOptions {
  // The replica endpoints (ring membership). Order is irrelevant to
  // routing — the ring hashes endpoint identities — but indexes into
  // counters().per_replica follow this vector. Must be non-empty with
  // distinct endpoints.
  std::vector<Endpoint> replicas;

  // Ring geometry (support::HashRing).
  int virtual_nodes = 128;

  // Template for every per-replica connection: deadlines, backoff,
  // breaker. endpoint/socket_path are overwritten per replica, and
  // local_fallback is forced off (the fleet owns the fallback decision).
  ClientOptions client;

  // plan_with_retry budget per replica attempt. Small on purpose: a
  // replica that fails this many consecutive transports is better served
  // by rerouting than by more patience.
  int retries_per_replica = 2;

  // How many distinct ring nodes to try before giving up. 0 = all.
  int route_attempts = 0;

  // A replica whose dial failed is not re-dialed for this long; requests
  // reroute past it meanwhile.
  std::uint32_t down_retry_ms = 200;

  // After every candidate fails at transport level: plan in-process
  // (core::plan_scatter) instead of returning the typed failure.
  bool local_fallback = false;
  int fallback_dp_threads = 1;

  // service.fleet.* counters/histograms; null falls back to
  // obs::global_metrics().
  obs::Metrics* metrics = nullptr;
};

class FleetClient {
 public:
  explicit FleetClient(FleetOptions options);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  // Routes by PlanKey and returns the first conclusive response (Ok /
  // Error / Rejected); transport failures walk the ring. Never throws on
  // transport trouble — a fleet with every replica down returns the last
  // typed failure (or the local fallback's plan).
  [[nodiscard]] PlanResponse plan(const model::Platform& platform, long long items,
                                  core::Algorithm algorithm = core::Algorithm::Auto);

  // The replica index (into options().replicas) a key routes to first —
  // the partition proof's oracle, identical to what plan() uses.
  [[nodiscard]] std::size_t route_of(const model::Platform& platform,
                                     long long items,
                                     core::Algorithm algorithm =
                                         core::Algorithm::Auto) const;

  // Control-plane helpers addressed by replica index. ping returns false
  // (and stats empty) when the replica cannot be reached.
  [[nodiscard]] bool ping(std::size_t replica);
  [[nodiscard]] std::string stats(std::size_t replica);
  bool shutdown_replica(std::size_t replica);

  struct Counters {
    std::uint64_t requests = 0;    // plan() calls
    std::uint64_t rerouted = 0;    // served by a non-home replica
    std::uint64_t fallbacks = 0;   // local in-process plans
    std::uint64_t exhausted = 0;   // every candidate failed, no fallback
    std::vector<std::uint64_t> per_replica;  // conclusive responses served
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] const FleetOptions& options() const { return options_; }
  [[nodiscard]] std::size_t replica_count() const { return slots_.size(); }

  // Closes every per-replica connection. Terminal.
  void close();

 private:
  struct Slot {
    Endpoint endpoint;
    std::mutex mu;  // guards client creation/teardown and down_until
    std::unique_ptr<Client> client;
    std::chrono::steady_clock::time_point down_until{};
  };

  // Dials if needed; nullptr while the replica is marked down or the dial
  // fails (which arms down_until).
  [[nodiscard]] Client* ensure_client(Slot& slot);

  // Ring node -> replica index. The ring preserves insertion order and
  // membership never changes after the ctor, so the node's position in
  // ring_.nodes() IS the replica index.
  [[nodiscard]] std::size_t replica_index(const std::string* node) const {
    return static_cast<std::size_t>(node - ring_.nodes().data());
  }

  [[nodiscard]] PlanResponse local_plan(const model::Platform& platform,
                                        long long items, core::Algorithm algorithm,
                                        const std::string& reason);

  FleetOptions options_;
  obs::Metrics* metrics_ = nullptr;
  support::HashRing ring_;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> served_;
};

}  // namespace lbs::service
