// FleetClient — consistent-hash routing over N lbsd replicas.
//
// One lbsd is a single point of failure and a single cache; a fleet of
// N replicas behind naive round-robin would be N duplicated caches (every
// replica eventually solves every hot key). FleetClient instead routes
// each request by its PlanKey over a support::HashRing keyed on the
// replicas' endpoints, so the fleet's ShardedPlanCaches PARTITION the key
// space: a key has exactly one home replica, aggregate cache capacity is
// the sum of the replicas', and a warm key is warm fleet-wide because
// every client routes it to the same place. The same key → same replica
// property is also what keeps request coalescing effective under a fleet:
// k identical concurrent requests from many FleetClients still meet in
// one replica's in-flight map and cost one dp.solve.
//
// Membership is LIVE (service/membership.hpp): the client holds a
// versioned MembershipView and rebuilds its ring from the view's serving
// members whenever a newer epoch arrives — from an explicit apply_view
// (lbsctl, tests), from the watched membership file, or from a
// WrongEpoch redirect: every plan request carries the client's epoch,
// and a replica that knows a newer view answers with that view instead
// of a plan. The client adopts it, re-rings, and re-routes — convergence
// without restart, no matter which path the news took. Per-replica
// breaker state survives resharding: slots are append-only and keyed by
// endpoint, so a membership change never resets a breaker or a counter.
//
// Failure handling is layered:
//   - each replica gets its own service::Client, with the per-connection
//     deadline/backoff/circuit-breaker machinery from client.hpp;
//   - when a replica's breaker is open, its dial fails, or a request
//     comes back with a transport status (Disconnected / Timeout /
//     BreakerOpen), the request REROUTES to the next distinct node on
//     the ring — the deterministic failover order, so even failover
//     traffic concentrates on one substitute replica and stays
//     cacheable. A replica that refused a dial is marked down for
//     down_retry_ms before the next dial attempt.
//   - when every candidate replica fails at transport level and
//     local_fallback is set, the plan degrades to the in-process
//     planner (same engine, flagged local_fallback), exactly like the
//     single-daemon client.
//
// Rejected (backpressure) is NOT rerouted by default: the home replica is
// alive, merely saturated; spilling its keys onto neighbors would melt
// the partition exactly when the fleet is hottest. It is counted in its
// own bucket (Counters::rejected), never as a reroute.
//
// Thread-safe: many threads may call plan() concurrently; per-replica
// clients are created on first use under a per-slot mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/client.hpp"
#include "service/membership.hpp"
#include "service/socket.hpp"
#include "support/hash_ring.hpp"

namespace lbs::service {

struct FleetOptions {
  // The replica endpoints (initial ring membership). Order is irrelevant
  // to routing — the ring hashes endpoint identities — but indexes into
  // counters().per_replica follow this vector. Must be non-empty with
  // distinct endpoints unless `view` supplies the membership instead.
  std::vector<Endpoint> replicas;

  // Explicit initial membership view. When its member list is empty the
  // view is synthesized from `replicas` (all serving, epoch 0 — the
  // unversioned pre-elasticity fleet). A nonzero epoch makes every plan
  // request carry it, enabling WrongEpoch redirects.
  MembershipView view;

  // A membership view file to adopt at construction and watch by mtime
  // (poll interval below; 0 disables watching). Same convergence rule as
  // every other path: newer epoch wins.
  std::string membership_path;
  std::uint32_t membership_poll_ms = 200;

  // Ring geometry (support::HashRing).
  int virtual_nodes = 128;

  // Template for every per-replica connection: deadlines, backoff,
  // breaker. endpoint/socket_path are overwritten per replica, and
  // local_fallback is forced off (the fleet owns the fallback decision).
  ClientOptions client;

  // plan_with_retry budget per replica attempt. Small on purpose: a
  // replica that fails this many consecutive transports is better served
  // by rerouting than by more patience.
  int retries_per_replica = 2;

  // How many distinct ring nodes to try before giving up. 0 = all.
  int route_attempts = 0;

  // How many WrongEpoch redirects one plan() call may follow. Each one
  // adopts a strictly newer view, so this bounds pathological churn, not
  // the normal case (one reshard = one redirect).
  int max_redirects = 3;

  // A replica whose dial failed is not re-dialed for this long; requests
  // reroute past it meanwhile.
  std::uint32_t down_retry_ms = 200;

  // After every candidate fails at transport level: plan in-process
  // (core::plan_scatter) instead of returning the typed failure.
  bool local_fallback = false;
  int fallback_dp_threads = 1;

  // service.fleet.* counters/histograms; null falls back to
  // obs::global_metrics().
  obs::Metrics* metrics = nullptr;
};

class FleetClient {
 public:
  explicit FleetClient(FleetOptions options);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  // Routes by PlanKey and returns the first conclusive response (Ok /
  // Error / Rejected); transport failures walk the ring, WrongEpoch
  // redirects adopt the newer view and re-route. Never throws on
  // transport trouble — a fleet with every replica down returns the last
  // typed failure (or the local fallback's plan).
  [[nodiscard]] PlanResponse plan(const model::Platform& platform, long long items,
                                  core::Algorithm algorithm = core::Algorithm::Auto);

  // The replica index (into counters().per_replica; construction order
  // for the initial membership) a key routes to first under the CURRENT
  // ring — the partition proof's oracle, identical to what plan() uses.
  [[nodiscard]] std::size_t route_of(const model::Platform& platform,
                                     long long items,
                                     core::Algorithm algorithm =
                                         core::Algorithm::Auto) const;

  // Control-plane helpers addressed by replica index. ping returns false
  // (and stats empty) when the replica cannot be reached.
  [[nodiscard]] bool ping(std::size_t replica);
  [[nodiscard]] std::string stats(std::size_t replica);
  bool shutdown_replica(std::size_t replica);

  // The membership this client currently routes by, and the one
  // convergence entry point: apply_view adopts iff strictly newer,
  // rebuilds the ring from the serving members, and returns whether it
  // won. Slots (breakers, counters) are never reset by a view change.
  [[nodiscard]] MembershipView membership_view() const;
  [[nodiscard]] std::uint64_t epoch() const;
  bool apply_view(const MembershipView& update);

  struct Counters {
    std::uint64_t requests = 0;    // plan() calls
    std::uint64_t rerouted = 0;    // Ok/Error served by a non-home replica
    std::uint64_t rejected = 0;    // backpressure replies (own bucket —
                                   // the replica is up, not a reroute)
    std::uint64_t redirected = 0;  // WrongEpoch redirects followed
    std::uint64_t fallbacks = 0;   // local in-process plans
    std::uint64_t exhausted = 0;   // every candidate failed, no fallback
    std::vector<std::uint64_t> per_replica;  // conclusive responses served
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] const FleetOptions& options() const { return options_; }
  [[nodiscard]] std::size_t replica_count() const;

  // Closes every per-replica connection and stops the watcher. Terminal.
  void close();

 private:
  struct Slot {
    Endpoint endpoint;
    std::mutex mu;  // guards client creation/teardown and down_until
    std::unique_ptr<Client> client;
    std::chrono::steady_clock::time_point down_until{};
  };

  // Dials if needed; nullptr while the replica is marked down or the dial
  // fails (which arms down_until).
  [[nodiscard]] Client* ensure_client(Slot& slot);
  // Bounds-checked slot lookup under view_mu_ (Slot objects are
  // heap-stable; the vector holding them is not).
  [[nodiscard]] Slot* slot_at(std::size_t replica) const;

  // Rebuilds ring_ from view_ and appends slots for unseen members.
  // Requires view_mu_.
  void install_view_locked();
  [[nodiscard]] std::size_t slot_for_locked(const std::string& spec);
  void membership_watch_loop();

  [[nodiscard]] PlanResponse local_plan(const model::Platform& platform,
                                        long long items, core::Algorithm algorithm,
                                        const std::string& reason);

  FleetOptions options_;
  obs::Metrics* metrics_ = nullptr;

  // view_ + ring_ + the slot index are one consistent unit under
  // view_mu_. Slots are append-only: a member that leaves the view keeps
  // its slot (and its counters and breaker history) in case it returns.
  mutable std::mutex view_mu_;
  MembershipView view_;
  support::HashRing ring_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unordered_map<std::string, std::size_t> slot_index_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> served_;

  std::atomic<bool> watch_stop_{false};
  std::thread watch_thread_;
  bool closed_ = false;  // guarded by view_mu_

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> redirected_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

}  // namespace lbs::service
