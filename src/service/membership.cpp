#include "service/membership.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace lbs::service {

const char* to_string(ReplicaState state) {
  switch (state) {
    case ReplicaState::Joining: return "joining";
    case ReplicaState::Serving: return "serving";
    case ReplicaState::Draining: return "draining";
  }
  return "?";
}

ReplicaState parse_replica_state(const std::string& word) {
  if (word == "joining") return ReplicaState::Joining;
  if (word == "serving") return ReplicaState::Serving;
  if (word == "draining") return ReplicaState::Draining;
  throw Error("membership: unknown replica state '" + word + "'");
}

const Member* MembershipView::find(const Endpoint& endpoint) const {
  for (const Member& member : members) {
    if (member.endpoint == endpoint) return &member;
  }
  return nullptr;
}

Member* MembershipView::find(const Endpoint& endpoint) {
  for (Member& member : members) {
    if (member.endpoint == endpoint) return &member;
  }
  return nullptr;
}

std::vector<Endpoint> MembershipView::serving_endpoints() const {
  std::vector<Endpoint> out;
  for (const Member& member : members) {
    if (member.state == ReplicaState::Serving) out.push_back(member.endpoint);
  }
  return out;
}

void validate_view(const MembershipView& view) {
  std::unordered_set<std::string> seen;
  for (const Member& member : view.members) {
    if (!member.endpoint.valid()) {
      throw Error("membership: view contains an invalid endpoint");
    }
    if (!seen.insert(member.endpoint.to_string()).second) {
      throw Error("membership: duplicate endpoint " + member.endpoint.to_string());
    }
  }
}

bool adopt(MembershipView& current, const MembershipView& update) {
  if (update.epoch <= current.epoch) return false;
  current = update;
  return true;
}

support::HashRing ring_of(const MembershipView& view, int virtual_nodes) {
  support::HashRing ring(virtual_nodes);
  for (const Member& member : view.members) {
    if (member.state == ReplicaState::Serving) {
      ring.add_node(member.endpoint.to_string());
    }
  }
  return ring;
}

std::string serialize_view(const MembershipView& view) {
  std::ostringstream out;
  out << "epoch " << view.epoch << '\n';
  for (const Member& member : view.members) {
    out << to_string(member.state) << ' ' << member.endpoint.to_string() << '\n';
  }
  return out.str();
}

MembershipView parse_view(const std::string& text) {
  MembershipView view;
  std::istringstream in(text);
  std::string line;
  bool saw_epoch = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim whitespace; skip blanks and comments.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    std::string word;
    fields >> word;
    if (!saw_epoch) {
      // The first meaningful line must declare the epoch.
      std::string value;
      if (word != "epoch" || !(fields >> value)) {
        throw Error("membership: line " + std::to_string(line_no) +
                    ": expected 'epoch <n>' first");
      }
      try {
        std::size_t used = 0;
        view.epoch = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw Error("membership: line " + std::to_string(line_no) +
                    ": bad epoch '" + value + "'");
      }
      saw_epoch = true;
      continue;
    }
    std::string spec;
    if (!(fields >> spec)) {
      throw Error("membership: line " + std::to_string(line_no) +
                  ": expected '<state> <endpoint>'");
    }
    Member member;
    member.state = parse_replica_state(word);
    member.endpoint = Endpoint::parse(spec);
    view.members.push_back(member);
  }
  if (!saw_epoch) throw Error("membership: no 'epoch' line");
  validate_view(view);
  return view;
}

MembershipView read_view_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("membership: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_view(buffer.str());
}

void write_view_file(const std::string& path, const MembershipView& view) {
  validate_view(view);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("membership: cannot write " + tmp);
    out << serialize_view(view);
    out.flush();
    if (!out) throw Error("membership: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    throw Error("membership: rename " + tmp + " -> " + path + " failed: " +
                std::strerror(err));
  }
}

}  // namespace lbs::service
