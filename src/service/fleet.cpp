#include "service/fleet.hpp"

#include <utility>

#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {

bool is_transport_failure(PlanStatus status) {
  return status == PlanStatus::Disconnected || status == PlanStatus::Timeout ||
         status == PlanStatus::BreakerOpen;
}

}  // namespace

FleetClient::FleetClient(FleetOptions options)
    : options_(std::move(options)), ring_(options_.virtual_nodes) {
  LBS_CHECK_MSG(!options_.replicas.empty(), "fleet needs at least one replica");
  LBS_CHECK_MSG(options_.retries_per_replica >= 0,
                "retries_per_replica must be >= 0");
  metrics_ = options_.metrics != nullptr ? options_.metrics : &obs::global_metrics();

  slots_.reserve(options_.replicas.size());
  served_.reserve(options_.replicas.size());
  for (const Endpoint& endpoint : options_.replicas) {
    LBS_CHECK_MSG(endpoint.valid(), "fleet replica endpoint is empty");
    ring_.add_node(endpoint.to_string());  // rejects duplicates
    auto slot = std::make_unique<Slot>();
    slot->endpoint = endpoint;
    slots_.push_back(std::move(slot));
    served_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

FleetClient::~FleetClient() { close(); }

Client* FleetClient::ensure_client(Slot& slot) {
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.client != nullptr) return slot.client.get();
  auto now = std::chrono::steady_clock::now();
  if (now < slot.down_until) return nullptr;

  ClientOptions client_options = options_.client;
  client_options.endpoint = slot.endpoint;
  client_options.socket_path.clear();
  client_options.local_fallback = false;  // the fleet owns the fallback decision
  client_options.metrics = metrics_;
  try {
    slot.client = std::make_unique<Client>(std::move(client_options));
  } catch (const lbs::Error&) {
    slot.down_until =
        now + std::chrono::milliseconds(options_.down_retry_ms);
    metrics_->counter("service.fleet.dial_failures").add();
    return nullptr;
  }
  return slot.client.get();
}

PlanResponse FleetClient::plan(const model::Platform& platform, long long items,
                               core::Algorithm algorithm) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("service.fleet.requests").add();

  core::PlanKey key = core::make_plan_key(platform, items, algorithm);
  std::uint64_t hash = static_cast<std::uint64_t>(core::PlanKeyHash{}(key));
  std::size_t attempts = options_.route_attempts > 0
                             ? static_cast<std::size_t>(options_.route_attempts)
                             : slots_.size();
  std::vector<const std::string*> candidates = ring_.nodes_for(hash, attempts);

  PlanResponse last;
  last.status = PlanStatus::Disconnected;
  last.message = "fleet: no replica reachable";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::size_t idx = replica_index(candidates[i]);
    Slot& slot = *slots_[idx];
    Client* client = ensure_client(slot);
    if (client == nullptr) continue;  // down cooldown, or the dial just failed

    PlanResponse response = client->plan_with_retry(platform, items, algorithm,
                                                    options_.retries_per_replica);
    if (!is_transport_failure(response.status)) {
      // Conclusive: the replica spoke (Ok / Error / Rejected). Rejected is
      // deliberately NOT rerouted — the home replica is alive, merely
      // saturated, and spilling its keys would melt the partition.
      served_[idx]->fetch_add(1, std::memory_order_relaxed);
      if (i > 0) {
        rerouted_.fetch_add(1, std::memory_order_relaxed);
        metrics_->counter("service.fleet.rerouted").add();
      }
      return response;
    }
    metrics_->counter("service.fleet.transport_failures").add();
    last = std::move(response);
  }

  if (options_.local_fallback) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("service.fleet.fallbacks").add();
    return local_plan(platform, items, algorithm, "fleet: all replicas failed");
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("service.fleet.exhausted").add();
  return last;
}

std::size_t FleetClient::route_of(const model::Platform& platform, long long items,
                                  core::Algorithm algorithm) const {
  core::PlanKey key = core::make_plan_key(platform, items, algorithm);
  std::uint64_t hash = static_cast<std::uint64_t>(core::PlanKeyHash{}(key));
  return replica_index(&ring_.node_for(hash));
}

PlanResponse FleetClient::local_plan(const model::Platform& platform,
                                     long long items, core::Algorithm algorithm,
                                     const std::string& reason) {
  PlanResponse response;
  try {
    core::PlannerOptions planner_options;
    planner_options.algorithm = algorithm;
    planner_options.dp.threads = options_.fallback_dp_threads;
    core::ScatterPlan plan = core::plan_scatter(platform, items, planner_options);
    response.status = PlanStatus::Ok;
    response.counts = std::move(plan.distribution.counts);
    response.predicted_makespan = plan.predicted_makespan;
    response.algorithm_used = plan.algorithm_used;
    response.dp_cells_evaluated = plan.dp_cells_evaluated;
    response.has_optimality_bound = plan.has_optimality_bound;
    response.optimality_gap = plan.optimality_gap;
    response.local_fallback = true;
    response.message = reason;
  } catch (const lbs::Error& error) {
    response.status = PlanStatus::Error;
    response.message = error.what();
  }
  return response;
}

bool FleetClient::ping(std::size_t replica) {
  LBS_CHECK_MSG(replica < slots_.size(), "fleet replica index out of range");
  Client* client = ensure_client(*slots_[replica]);
  return client != nullptr && client->ping();
}

std::string FleetClient::stats(std::size_t replica) {
  LBS_CHECK_MSG(replica < slots_.size(), "fleet replica index out of range");
  Client* client = ensure_client(*slots_[replica]);
  return client != nullptr ? client->server_stats() : std::string{};
}

bool FleetClient::shutdown_replica(std::size_t replica) {
  LBS_CHECK_MSG(replica < slots_.size(), "fleet replica index out of range");
  Client* client = ensure_client(*slots_[replica]);
  return client != nullptr && client->shutdown_server();
}

FleetClient::Counters FleetClient::counters() const {
  Counters out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.rerouted = rerouted_.load(std::memory_order_relaxed);
  out.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  out.exhausted = exhausted_.load(std::memory_order_relaxed);
  out.per_replica.reserve(served_.size());
  for (const auto& count : served_) {
    out.per_replica.push_back(count->load(std::memory_order_relaxed));
  }
  return out;
}

void FleetClient::close() {
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->client != nullptr) slot->client->close();
  }
}

}  // namespace lbs::service
