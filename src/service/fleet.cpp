#include "service/fleet.hpp"

#include <sys/stat.h>

#include <utility>

#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace lbs::service {

namespace {

bool is_transport_failure(PlanStatus status) {
  return status == PlanStatus::Disconnected || status == PlanStatus::Timeout ||
         status == PlanStatus::BreakerOpen;
}

}  // namespace

FleetClient::FleetClient(FleetOptions options)
    : options_(std::move(options)), ring_(options_.virtual_nodes) {
  LBS_CHECK_MSG(options_.retries_per_replica >= 0,
                "retries_per_replica must be >= 0");
  LBS_CHECK_MSG(options_.max_redirects >= 0, "max_redirects must be >= 0");
  metrics_ = options_.metrics != nullptr ? options_.metrics : &obs::global_metrics();

  MembershipView initial = options_.view;
  if (initial.members.empty()) {
    for (const Endpoint& endpoint : options_.replicas) {
      LBS_CHECK_MSG(endpoint.valid(), "fleet replica endpoint is empty");
      initial.members.push_back(Member{endpoint, ReplicaState::Serving});
    }
  }
  LBS_CHECK_MSG(!initial.members.empty(), "fleet needs at least one replica");
  validate_view(initial);  // rejects duplicates / invalid endpoints
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view_ = std::move(initial);
    install_view_locked();
    LBS_CHECK_MSG(ring_.node_count() > 0,
                  "fleet membership has no serving replica");
  }

  if (!options_.membership_path.empty()) {
    try {
      // Best effort: a missing file just means "start from the built-in
      // view"; the watcher below picks it up once it appears.
      apply_view(read_view_file(options_.membership_path));
    } catch (const lbs::Error&) {
    }
    if (options_.membership_poll_ms > 0) {
      watch_thread_ = std::thread([this] { membership_watch_loop(); });
    }
  }
}

FleetClient::~FleetClient() { close(); }

void FleetClient::install_view_locked() {
  support::HashRing next(options_.virtual_nodes);
  for (const Member& member : view_.members) {
    std::size_t idx = slot_for_locked(member.endpoint.to_string());
    if (member.state == ReplicaState::Serving) {
      next.add_node(slots_[idx]->endpoint.to_string());
    }
  }
  ring_ = std::move(next);
}

std::size_t FleetClient::slot_for_locked(const std::string& spec) {
  auto it = slot_index_.find(spec);
  if (it != slot_index_.end()) return it->second;
  auto slot = std::make_unique<Slot>();
  slot->endpoint = Endpoint::parse(spec);
  std::size_t idx = slots_.size();
  slots_.push_back(std::move(slot));
  served_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  slot_index_.emplace(spec, idx);
  return idx;
}

MembershipView FleetClient::membership_view() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

std::uint64_t FleetClient::epoch() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_.epoch;
}

bool FleetClient::apply_view(const MembershipView& update) {
  validate_view(update);
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    if (!adopt(view_, update)) return false;
    install_view_locked();
  }
  metrics_->counter("service.fleet.view_updates").add();
  return true;
}

void FleetClient::membership_watch_loop() {
  // Re-read on any (mtime, size) change; adopt() dedups by epoch, so a
  // rewrite of the same view is a no-op.
  long long last_stamp = -2;
  long long last_size = -2;
  while (!watch_stop_.load(std::memory_order_acquire)) {
    struct stat st{};
    long long stamp = -1;
    long long size = -1;
    if (::stat(options_.membership_path.c_str(), &st) == 0) {
      stamp = static_cast<long long>(st.st_mtim.tv_sec) * 1000000000LL +
              st.st_mtim.tv_nsec;
      size = static_cast<long long>(st.st_size);
    }
    if (stamp != last_stamp || size != last_size) {
      last_stamp = stamp;
      last_size = size;
      if (stamp >= 0) {
        try {
          apply_view(read_view_file(options_.membership_path));
        } catch (const lbs::Error&) {
          metrics_->counter("service.fleet.file_rejected").add();
        }
      }
    }
    // Chunked sleep so close() never waits a full poll interval.
    std::uint32_t remaining = options_.membership_poll_ms;
    while (remaining > 0 && !watch_stop_.load(std::memory_order_acquire)) {
      std::uint32_t chunk = remaining < 10 ? remaining : 10;
      std::this_thread::sleep_for(std::chrono::milliseconds(chunk));
      remaining -= chunk;
    }
  }
}

Client* FleetClient::ensure_client(Slot& slot) {
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.client != nullptr) return slot.client.get();
  auto now = std::chrono::steady_clock::now();
  if (now < slot.down_until) return nullptr;

  ClientOptions client_options = options_.client;
  client_options.endpoint = slot.endpoint;
  client_options.socket_path.clear();
  client_options.local_fallback = false;  // the fleet owns the fallback decision
  client_options.metrics = metrics_;
  try {
    slot.client = std::make_unique<Client>(std::move(client_options));
  } catch (const lbs::Error&) {
    slot.down_until =
        now + std::chrono::milliseconds(options_.down_retry_ms);
    metrics_->counter("service.fleet.dial_failures").add();
    return nullptr;
  }
  return slot.client.get();
}

PlanResponse FleetClient::plan(const model::Platform& platform, long long items,
                               core::Algorithm algorithm) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("service.fleet.requests").add();

  core::PlanKey key = core::make_plan_key(platform, items, algorithm);
  std::uint64_t hash = static_cast<std::uint64_t>(core::PlanKeyHash{}(key));

  PlanResponse last;
  last.status = PlanStatus::Disconnected;
  last.message = "fleet: no replica reachable";
  for (int redirect = 0; redirect <= options_.max_redirects; ++redirect) {
    // Snapshot the routing decision under the lock; the ring's node
    // strings must be copied because a concurrent apply_view may rebuild
    // the ring while we walk the candidates.
    std::uint64_t epoch = 0;
    std::vector<std::string> candidates;
    {
      std::lock_guard<std::mutex> lock(view_mu_);
      epoch = view_.epoch;
      std::size_t attempts =
          options_.route_attempts > 0
              ? static_cast<std::size_t>(options_.route_attempts)
              : ring_.node_count();
      candidates.reserve(attempts);
      for (const std::string* node : ring_.nodes_for(hash, attempts)) {
        candidates.push_back(*node);
      }
    }

    bool redirected = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      // Slot objects are heap-stable, but the slots_ vector itself may
      // reallocate under a concurrent apply_view — resolve the pointer
      // under the lock.
      Slot* slot;
      std::atomic<std::uint64_t>* served;
      {
        std::lock_guard<std::mutex> lock(view_mu_);
        std::size_t idx = slot_for_locked(candidates[i]);
        slot = slots_[idx].get();
        served = served_[idx].get();
      }
      Client* client = ensure_client(*slot);
      if (client == nullptr) continue;  // down cooldown, or the dial just failed

      client->set_epoch(epoch);
      PlanResponse response;
      bool gossiped = false;
      for (;;) {
        response = client->plan_with_retry(
            platform, items, algorithm, options_.retries_per_replica);
        if (response.status == PlanStatus::WrongEpoch && !gossiped &&
            response.current_view.epoch != 0 &&
            response.current_view.epoch < epoch) {
          // The REPLICA is behind: the admin's pushes are sequential, so
          // a client can learn epoch N+1 from one replica while another
          // still holds N — and that laggard must not solve keys it no
          // longer owns. Gossip our newer view (the replica's adopt runs
          // its handoff pull before acking), then retry this candidate
          // once with a warm cache waiting.
          gossiped = true;
          bool pushed = false;
          try {
            pushed = client->membership_exchange(membership_view()).has_value();
          } catch (const lbs::Error&) {
          }
          if (pushed) {
            metrics_->counter("service.fleet.view_pushes").add();
            continue;
          }
        }
        break;
      }
      if (response.status == PlanStatus::WrongEpoch) {
        // Never keep walking the candidate list after a WrongEpoch: the
        // failover peers would be asked under an epoch we already know
        // is suspect, and a peer whose epoch happens to match ours would
        // dutifully solve a key it does not own (an observable re-solve).
        // Either the redirect carries a newer view (adopt it), or a
        // concurrent thread already advanced view_ past our snapshot —
        // both mean the same thing: re-snapshot and re-route from the
        // top, bounded by max_redirects.
        (void)apply_view(response.current_view);
        redirected_.fetch_add(1, std::memory_order_relaxed);
        metrics_->counter("service.fleet.redirected").add();
        redirected = true;
        break;
      }
      if (!is_transport_failure(response.status)) {
        // Conclusive: the replica spoke (Ok / Error / Rejected). Rejected
        // is deliberately NOT rerouted — the home replica is alive, merely
        // saturated, and spilling its keys would melt the partition — and
        // it is NOT counted as a reroute either: it lands in its own
        // bucket regardless of which candidate said it.
        served->fetch_add(1, std::memory_order_relaxed);
        if (response.status == PlanStatus::Rejected) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          metrics_->counter("service.fleet.rejected").add();
        } else if (i > 0) {
          rerouted_.fetch_add(1, std::memory_order_relaxed);
          metrics_->counter("service.fleet.rerouted").add();
        }
        return response;
      }
      metrics_->counter("service.fleet.transport_failures").add();
      last = std::move(response);
    }
    if (!redirected) break;  // candidates exhausted under a stable view
  }

  if (options_.local_fallback) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    metrics_->counter("service.fleet.fallbacks").add();
    return local_plan(platform, items, algorithm, "fleet: all replicas failed");
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("service.fleet.exhausted").add();
  return last;
}

std::size_t FleetClient::route_of(const model::Platform& platform, long long items,
                                  core::Algorithm algorithm) const {
  core::PlanKey key = core::make_plan_key(platform, items, algorithm);
  std::uint64_t hash = static_cast<std::uint64_t>(core::PlanKeyHash{}(key));
  std::lock_guard<std::mutex> lock(view_mu_);
  LBS_CHECK_MSG(ring_.node_count() > 0, "fleet membership has no serving replica");
  return slot_index_.at(ring_.node_for(hash));
}

PlanResponse FleetClient::local_plan(const model::Platform& platform,
                                     long long items, core::Algorithm algorithm,
                                     const std::string& reason) {
  PlanResponse response;
  try {
    core::PlannerOptions planner_options;
    planner_options.algorithm = algorithm;
    planner_options.dp.threads = options_.fallback_dp_threads;
    core::ScatterPlan plan = core::plan_scatter(platform, items, planner_options);
    response.status = PlanStatus::Ok;
    response.counts = std::move(plan.distribution.counts);
    response.predicted_makespan = plan.predicted_makespan;
    response.algorithm_used = plan.algorithm_used;
    response.dp_cells_evaluated = plan.dp_cells_evaluated;
    response.has_optimality_bound = plan.has_optimality_bound;
    response.optimality_gap = plan.optimality_gap;
    response.local_fallback = true;
    response.message = reason;
  } catch (const lbs::Error& error) {
    response.status = PlanStatus::Error;
    response.message = error.what();
  }
  return response;
}

FleetClient::Slot* FleetClient::slot_at(std::size_t replica) const {
  std::lock_guard<std::mutex> lock(view_mu_);
  LBS_CHECK_MSG(replica < slots_.size(), "fleet replica index out of range");
  return slots_[replica].get();
}

bool FleetClient::ping(std::size_t replica) {
  Client* client = ensure_client(*slot_at(replica));
  return client != nullptr && client->ping();
}

std::string FleetClient::stats(std::size_t replica) {
  Client* client = ensure_client(*slot_at(replica));
  return client != nullptr ? client->server_stats() : std::string{};
}

bool FleetClient::shutdown_replica(std::size_t replica) {
  Client* client = ensure_client(*slot_at(replica));
  return client != nullptr && client->shutdown_server();
}

std::size_t FleetClient::replica_count() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return slots_.size();
}

FleetClient::Counters FleetClient::counters() const {
  Counters out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.rerouted = rerouted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.redirected = redirected_.load(std::memory_order_relaxed);
  out.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  out.exhausted = exhausted_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(view_mu_);
  out.per_replica.reserve(served_.size());
  for (const auto& count : served_) {
    out.per_replica.push_back(count->load(std::memory_order_relaxed));
  }
  return out;
}

void FleetClient::close() {
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    if (closed_) return;
    closed_ = true;
  }
  watch_stop_.store(true, std::memory_order_release);
  if (watch_thread_.joinable()) watch_thread_.join();
  std::size_t count = replica_count();
  for (std::size_t i = 0; i < count; ++i) {
    Slot* slot = slot_at(i);
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->client != nullptr) slot->client->close();
  }
}

}  // namespace lbs::service
