#include "service/chaos.hpp"

#include <atomic>

#include "support/error.hpp"

namespace lbs::service {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

void check_probability(double p, const char* name) {
  LBS_CHECK_MSG(p >= 0.0 && p <= 1.0,
                std::string("chaos: probability out of [0,1] for ") + name);
}

}  // namespace

FaultInjector::FaultInjector(const ChaosOptions& options)
    : options_(options), rng_(options.seed) {
  check_probability(options.short_read, "short_read");
  check_probability(options.partial_write, "partial_write");
  check_probability(options.corrupt_byte, "corrupt_byte");
  check_probability(options.disconnect, "disconnect");
  check_probability(options.stall, "stall");
  LBS_CHECK_MSG(options.stall_ms >= 0, "chaos: negative stall_ms");
}

FaultInjector::WriteAction FaultInjector::on_write(std::size_t size) {
  std::lock_guard lock(mu_);
  WriteAction action;
  if (size == 0) return action;
  if (rng_.bernoulli(options_.stall)) {
    action.stall_ms = options_.stall_ms;
    ++counters_.stalls;
  }
  if (rng_.bernoulli(options_.disconnect)) {
    action.disconnect = true;
    ++counters_.disconnects;
    return action;  // the attempt dies; no point shaping it further
  }
  if (size > 1 && rng_.bernoulli(options_.partial_write)) {
    action.max_bytes = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(std::min<std::size_t>(size - 1, 3))));
    ++counters_.partial_writes;
  }
  if (rng_.bernoulli(options_.corrupt_byte)) {
    std::size_t visible = std::min(action.max_bytes, size);
    action.corrupt = true;
    action.corrupt_offset = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(visible) - 1));
    action.corrupt_mask =
        static_cast<std::uint8_t>(rng_.uniform_int(1, 255));
    ++counters_.corruptions;
  }
  return action;
}

FaultInjector::ReadAction FaultInjector::on_read(std::size_t size) {
  std::lock_guard lock(mu_);
  ReadAction action;
  if (size == 0) return action;
  if (rng_.bernoulli(options_.stall)) {
    action.stall_ms = options_.stall_ms;
    ++counters_.stalls;
  }
  if (rng_.bernoulli(options_.disconnect)) {
    action.disconnect = true;
    ++counters_.disconnects;
    return action;
  }
  if (size > 1 && rng_.bernoulli(options_.short_read)) {
    action.max_bytes = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(std::min<std::size_t>(size - 1, 3))));
    ++counters_.short_reads;
  }
  return action;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

void set_fault_injector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* fault_injector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace lbs::service
