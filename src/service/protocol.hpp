// Wire protocol of the planning service (lbsd).
//
// Framing: every message is one length-prefixed frame
//
//   u32 payload_length (little-endian) | payload
//
// and every payload starts with `u8 version | u8 message_type | u64 id`.
// The id is chosen by the requester and echoed verbatim in the response,
// which is what lets a client pipeline many requests over one connection
// and match replies out of order. Frames above kMaxFrameBytes are a
// protocol violation (the peer is garbage or hostile) and close the
// connection.
//
// A plan request ships the *structural* platform — each processor's
// Tcomm/Tcomp as a model::CostSpec, root last, exactly the information
// core::make_plan_key hashes — plus the item count and requested
// algorithm. Labels and machine refs never cross the wire: two clients
// with structurally identical platforms share cache entries and coalesce
// onto the same in-flight solve.
//
// Responses carry a status (docs/service.md has the full semantics):
//   Ok       the plan: counts (root last), makespan, provenance flags
//   Rejected backpressure — the solve queue was full; retry_after_ms is
//            the server's hint for when to try again
//   Error    malformed/inadmissible request or a planner precondition
//            failure (e.g. forced lp-heuristic on non-affine costs)
//
// Integers are little-endian; doubles are IEEE-754 bit patterns shipped
// as u64, so costs round-trip bit-exactly and cache keys agree across
// client and server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "model/cost.hpp"
#include "model/platform.hpp"

namespace lbs::service {

// v2: frames grew a CRC-32 integrity word (socket.hpp) — a v1 peer
// cannot even frame-align against a v2 stream, so the version byte exists
// to make the mismatch a clean decode error rather than garbage.
// v3: Ok plan responses carry the Eq. 4 optimality certificate (a flag
// bit plus the f64 gap), so fast-path plans arrive with their bound.
inline constexpr std::uint8_t kProtocolVersion = 3;
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB
// Nested Scaled specs deeper than this are rejected at decode (a legit
// platform wraps a cost a handful of times; a hostile frame recurses).
inline constexpr int kMaxCostSpecDepth = 16;

enum class MessageType : std::uint8_t {
  PlanRequest = 1,
  PlanResponse = 2,
  Ping = 3,
  Pong = 4,
  StatsRequest = 5,
  StatsResponse = 6,
  Shutdown = 7,
  ShutdownAck = 8,
};

enum class PlanStatus : std::uint8_t {
  Ok = 0,
  Rejected = 1,      // backpressure: queue full, retry later
  Error = 2,         // inadmissible request or planner failure
  Disconnected = 3,  // client-side only: connection died before the reply
  Timeout = 4,       // client-side only: request deadline passed first
  BreakerOpen = 5,   // client-side only: circuit breaker failing fast
};

struct PlanRequest {
  std::uint64_t id = 0;
  core::Algorithm algorithm = core::Algorithm::Auto;
  long long items = 0;
  model::Platform platform;  // root last; labels synthesized on decode
};

struct PlanResponse {
  std::uint64_t id = 0;
  PlanStatus status = PlanStatus::Ok;

  // status == Ok:
  std::vector<long long> counts;  // aligned with the request's processors
  double predicted_makespan = 0.0;
  core::Algorithm algorithm_used = core::Algorithm::Auto;
  long long dp_cells_evaluated = 0;
  // Eq. 4 certificate (see core::ScatterPlan): when the flag is set,
  // predicted_makespan <= optimal + optimality_gap (0 for DP plans).
  bool has_optimality_bound = false;
  double optimality_gap = 0.0;
  bool cache_hit = false;   // served straight from the sharded cache
  bool coalesced = false;   // attached to another request's in-flight solve
  // Client-side only: this Ok was computed in-process by plan_scatter
  // because the circuit breaker was open (or retries were exhausted) —
  // it never touched the daemon. Not encoded on the wire.
  bool local_fallback = false;

  // status == Rejected:
  std::uint32_t retry_after_ms = 0;

  // status == Error (and the client-side statuses): human-readable cause.
  std::string message;

  // Prefix sums of counts — the displacements an MPI_Scatterv needs.
  [[nodiscard]] std::vector<long long> displacements() const;
};

// A decoded frame: exactly one of the optional bodies is set, matching
// `type` (control messages carry only the id; StatsResponse carries text).
struct Message {
  MessageType type = MessageType::Ping;
  std::uint64_t id = 0;
  std::optional<PlanRequest> plan_request;
  std::optional<PlanResponse> plan_response;
  std::string text;  // StatsResponse: metrics JSON
};

// Bounds-checked little-endian reader over a received payload. All reads
// throw lbs::Error("wire: ...") on underrun or malformed data; the server
// and client treat that as a fatal protocol violation on the connection.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] long long read_i64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();  // u32 length + bytes

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  // Throws unless the payload was consumed exactly (trailing bytes mean a
  // mis-framed or corrupt message).
  void expect_end() const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Append-only little-endian writer building a payload.
class WireWriter {
 public:
  void put_u8(std::uint8_t value);
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_i64(long long value);
  void put_f64(double value);
  void put_string(const std::string& value);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

// Cost / platform serialization (exact round-trip; see model::CostSpec).
void encode_cost(WireWriter& out, const model::Cost& cost);
[[nodiscard]] model::Cost decode_cost(WireReader& in);
void encode_platform(WireWriter& out, const model::Platform& platform);
[[nodiscard]] model::Platform decode_platform(WireReader& in);

// Message encoding: complete payloads (version + type + id + body),
// ready for a length-prefixed frame.
[[nodiscard]] std::vector<std::uint8_t> encode_plan_request(const PlanRequest& request);
[[nodiscard]] std::vector<std::uint8_t> encode_plan_response(const PlanResponse& response);
[[nodiscard]] std::vector<std::uint8_t> encode_control(MessageType type, std::uint64_t id);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_response(std::uint64_t id,
                                                              const std::string& json);

// Decodes one payload. Throws lbs::Error on version mismatch, unknown
// type, truncation, or trailing bytes.
[[nodiscard]] Message decode_message(const std::uint8_t* data, std::size_t size);
[[nodiscard]] Message decode_message(const std::vector<std::uint8_t>& payload);

}  // namespace lbs::service
