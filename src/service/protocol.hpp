// Wire protocol of the planning service (lbsd).
//
// Framing: every message is one length-prefixed frame
//
//   u32 payload_length (little-endian) | payload
//
// and every payload starts with `u8 version | u8 message_type | u64 id`.
// The id is chosen by the requester and echoed verbatim in the response,
// which is what lets a client pipeline many requests over one connection
// and match replies out of order. Frames above kMaxFrameBytes are a
// protocol violation (the peer is garbage or hostile) and close the
// connection.
//
// A plan request ships the *structural* platform — each processor's
// Tcomm/Tcomp as a model::CostSpec, root last, exactly the information
// core::make_plan_key hashes — plus the item count and requested
// algorithm. Labels and machine refs never cross the wire: two clients
// with structurally identical platforms share cache entries and coalesce
// onto the same in-flight solve.
//
// Responses carry a status (docs/service.md has the full semantics):
//   Ok       the plan: counts (root last), makespan, provenance flags
//   Rejected backpressure — the solve queue was full; retry_after_ms is
//            the server's hint for when to try again
//   Error    malformed/inadmissible request or a planner precondition
//            failure (e.g. forced lp-heuristic on non-affine costs)
//
// Integers are little-endian; doubles are IEEE-754 bit patterns shipped
// as u64, so costs round-trip bit-exactly and cache keys agree across
// client and server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "model/cost.hpp"
#include "model/platform.hpp"
#include "service/membership.hpp"
#include "service/snapshot.hpp"

namespace lbs::service {

// v2: frames grew a CRC-32 integrity word (socket.hpp) — a v1 peer
// cannot even frame-align against a v2 stream, so the version byte exists
// to make the mismatch a clean decode error rather than garbage.
// v3: Ok plan responses carry the Eq. 4 optimality certificate (a flag
// bit plus the f64 gap), so fast-path plans arrive with their bound.
// v4: elastic fleets — plan requests carry the client's membership epoch,
// a stale epoch earns a WrongEpoch response embedding the server's
// current view, and four control frames move views and warm-start
// entries around: MembershipUpdate/MembershipAck (push a view / return
// the holder's view) and SnapshotRange/SnapshotRangeData (a joining
// replica pulls the cache entries it now owns, in snapshot-codec bytes).
inline constexpr std::uint8_t kProtocolVersion = 4;
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB
// Nested Scaled specs deeper than this are rejected at decode (a legit
// platform wraps a cost a handful of times; a hostile frame recurses).
inline constexpr int kMaxCostSpecDepth = 16;
// A fleet is tens of replicas, not millions: bounds a hostile member
// count before any allocation trusts it.
inline constexpr std::uint32_t kMaxViewMembers = 4096;

enum class MessageType : std::uint8_t {
  PlanRequest = 1,
  PlanResponse = 2,
  Ping = 3,
  Pong = 4,
  StatsRequest = 5,
  StatsResponse = 6,
  Shutdown = 7,
  ShutdownAck = 8,
  // v4 membership control plane. MembershipUpdate carries a view the
  // receiver adopt()s iff newer; the Ack always returns the receiver's
  // (possibly unchanged) view, so an update with epoch 0 doubles as a
  // pure membership query. SnapshotRange asks "send me the snapshot
  // entries that `owner` owns under this view's ring"; the RangeData
  // reply carries them in the snapshot codec's entry encoding.
  MembershipUpdate = 9,
  MembershipAck = 10,
  SnapshotRange = 11,
  SnapshotRangeData = 12,
};

enum class PlanStatus : std::uint8_t {
  Ok = 0,
  Rejected = 1,      // backpressure: queue full, retry later
  Error = 2,         // inadmissible request or planner failure
  Disconnected = 3,  // client-side only: connection died before the reply
  Timeout = 4,       // client-side only: request deadline passed first
  BreakerOpen = 5,   // client-side only: circuit breaker failing fast
  WrongEpoch = 6,    // request's membership epoch is stale; the response
                     // carries the server's current view — reroute, don't retry
};

struct PlanRequest {
  std::uint64_t id = 0;
  core::Algorithm algorithm = core::Algorithm::Auto;
  long long items = 0;
  // The membership epoch the client routed under. 0 = unversioned (a
  // pre-elasticity client, or one never handed a view): the server
  // serves it rather than strand legacy clients. A nonzero epoch older
  // than the server's view earns WrongEpoch instead of a plan.
  std::uint64_t epoch = 0;
  model::Platform platform;  // root last; labels synthesized on decode
};

struct PlanResponse {
  std::uint64_t id = 0;
  PlanStatus status = PlanStatus::Ok;

  // status == Ok:
  std::vector<long long> counts;  // aligned with the request's processors
  double predicted_makespan = 0.0;
  core::Algorithm algorithm_used = core::Algorithm::Auto;
  long long dp_cells_evaluated = 0;
  // Eq. 4 certificate (see core::ScatterPlan): when the flag is set,
  // predicted_makespan <= optimal + optimality_gap (0 for DP plans).
  bool has_optimality_bound = false;
  double optimality_gap = 0.0;
  bool cache_hit = false;   // served straight from the sharded cache
  bool coalesced = false;   // attached to another request's in-flight solve
  // Client-side only: this Ok was computed in-process by plan_scatter
  // because the circuit breaker was open (or retries were exhausted) —
  // it never touched the daemon. Not encoded on the wire.
  bool local_fallback = false;

  // status == Rejected:
  std::uint32_t retry_after_ms = 0;

  // status == WrongEpoch: the server's current membership view — the
  // redirect payload a stale client adopts before rerouting.
  MembershipView current_view;

  // status == Error (and the client-side statuses): human-readable cause.
  std::string message;

  // Prefix sums of counts — the displacements an MPI_Scatterv needs.
  [[nodiscard]] std::vector<long long> displacements() const;
};

// A decoded frame: exactly one of the optional bodies is set, matching
// `type` (control messages carry only the id; StatsResponse carries text).
struct Message {
  MessageType type = MessageType::Ping;
  std::uint64_t id = 0;
  std::optional<PlanRequest> plan_request;
  std::optional<PlanResponse> plan_response;
  // StatsResponse: metrics JSON. SnapshotRange: the requester's own
  // canonical endpoint spec (the ring node whose keys it wants).
  std::string text;
  // MembershipUpdate / MembershipAck / SnapshotRange: the view in play.
  std::optional<MembershipView> view;
  // SnapshotRangeData: the requested warm-start entries.
  std::vector<SnapshotEntry> entries;
};

// Bounds-checked little-endian reader over a received payload. All reads
// throw lbs::Error("wire: ...") on underrun or malformed data; the server
// and client treat that as a fatal protocol violation on the connection.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] long long read_i64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();  // u32 length + bytes

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  // Throws unless the payload was consumed exactly (trailing bytes mean a
  // mis-framed or corrupt message).
  void expect_end() const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Append-only little-endian writer building a payload.
class WireWriter {
 public:
  void put_u8(std::uint8_t value);
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_i64(long long value);
  void put_f64(double value);
  void put_string(const std::string& value);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

// Cost / platform serialization (exact round-trip; see model::CostSpec).
void encode_cost(WireWriter& out, const model::Cost& cost);
[[nodiscard]] model::Cost decode_cost(WireReader& in);
void encode_platform(WireWriter& out, const model::Platform& platform);
[[nodiscard]] model::Platform decode_platform(WireReader& in);

// Message encoding: complete payloads (version + type + id + body),
// ready for a length-prefixed frame.
[[nodiscard]] std::vector<std::uint8_t> encode_plan_request(const PlanRequest& request);
[[nodiscard]] std::vector<std::uint8_t> encode_plan_response(const PlanResponse& response);
[[nodiscard]] std::vector<std::uint8_t> encode_control(MessageType type, std::uint64_t id);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_response(std::uint64_t id,
                                                              const std::string& json);

// v4 membership / handoff frames. Views encode as
// `u64 epoch | u32 member_count | per member: u8 state | string spec`.
void encode_membership_view(WireWriter& out, const MembershipView& view);
[[nodiscard]] MembershipView decode_membership_view(WireReader& in);
[[nodiscard]] std::vector<std::uint8_t> encode_membership_update(
    std::uint64_t id, const MembershipView& view);
[[nodiscard]] std::vector<std::uint8_t> encode_membership_ack(
    std::uint64_t id, const MembershipView& view);
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_range(
    std::uint64_t id, const MembershipView& view, const std::string& owner);
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_range_data(
    std::uint64_t id, const std::vector<SnapshotEntry>& entries);

// Decodes one payload. Throws lbs::Error on version mismatch, unknown
// type, truncation, or trailing bytes.
[[nodiscard]] Message decode_message(const std::uint8_t* data, std::size_t size);
[[nodiscard]] Message decode_message(const std::vector<std::uint8_t>& payload);

}  // namespace lbs::service
