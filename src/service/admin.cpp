#include "service/admin.hpp"

#include <utility>

#include "service/client.hpp"
#include "support/error.hpp"

namespace lbs::service::admin {

namespace {

ClientOptions control_options(const Endpoint& target, std::uint32_t timeout_ms) {
  ClientOptions options;
  options.endpoint = target;
  options.control_timeout_ms = timeout_ms;
  options.breaker_threshold = 0;  // one-shot dial; no breaker state to keep
  return options;
}

// One dial, one MembershipUpdate round-trip, hang up. Returns the peer's
// post-adopt view; records a "<endpoint>: reason" error on any failure.
std::optional<MembershipView> exchange_once(const Endpoint& target,
                                            const MembershipView& view,
                                            std::uint32_t timeout_ms,
                                            std::vector<std::string>& errors) {
  try {
    Client client(control_options(target, timeout_ms));
    std::optional<MembershipView> reply = client.membership_exchange(view);
    if (!reply.has_value()) {
      errors.push_back(target.to_string() + ": no membership ack");
    }
    return reply;
  } catch (const lbs::Error& error) {
    errors.push_back(target.to_string() + ": " + error.what());
    return std::nullopt;
  }
}

std::vector<Endpoint> member_endpoints(const MembershipView& view) {
  std::vector<Endpoint> out;
  out.reserve(view.members.size());
  for (const Member& member : view.members) out.push_back(member.endpoint);
  return out;
}

}  // namespace

std::optional<MembershipView> fetch_view(const Endpoint& target,
                                         std::uint32_t timeout_ms) {
  std::vector<std::string> sink;
  return exchange_once(target, MembershipView{}, timeout_ms, sink);
}

PushResult push_view(const MembershipView& view,
                     const std::vector<Endpoint>& targets,
                     std::uint32_t timeout_ms) {
  PushResult result;
  result.view = view;
  for (const Endpoint& target : targets) {
    if (exchange_once(target, view, timeout_ms, result.errors).has_value()) {
      ++result.acked;
    }
  }
  return result;
}

PushResult join_fleet(const MembershipView& base, const Endpoint& joiner,
                      std::uint32_t timeout_ms) {
  LBS_CHECK_MSG(joiner.valid(), "join: joiner endpoint is empty");
  LBS_CHECK_MSG(base.find(joiner) == nullptr, "join: already a member");

  // Phase 1: announce. The joiner is named but not route-eligible, so no
  // client re-rings and no key can land on a cold cache.
  MembershipView announce = base;
  announce.epoch = base.epoch + 1;
  announce.members.push_back(Member{joiner, ReplicaState::Joining});
  validate_view(announce);
  PushResult result = push_view(announce, member_endpoints(announce), timeout_ms);

  // Phase 2: promote. The joiner hears FIRST — its adopt pulls its
  // partition from every serving peer before the new epoch is published,
  // so it goes route-eligible already warm.
  MembershipView promote = announce;
  promote.epoch = announce.epoch + 1;
  promote.find(joiner)->state = ReplicaState::Serving;
  std::vector<Endpoint> targets;
  targets.push_back(joiner);
  for (const Member& member : promote.members) {
    if (!(member.endpoint == joiner)) targets.push_back(member.endpoint);
  }
  PushResult phase2 = push_view(promote, targets, timeout_ms);

  result.view = std::move(phase2.view);
  result.acked += phase2.acked;
  result.errors.insert(result.errors.end(), phase2.errors.begin(),
                       phase2.errors.end());
  return result;
}

PushResult drain_replica(const MembershipView& base, const Endpoint& target,
                         std::uint32_t timeout_ms) {
  const Member* member = base.find(target);
  LBS_CHECK_MSG(member != nullptr, "drain: not a member");
  LBS_CHECK_MSG(member->state == ReplicaState::Serving,
                "drain: target is not serving");

  MembershipView next = base;
  next.epoch = base.epoch + 1;
  next.find(target)->state = ReplicaState::Draining;
  validate_view(next);

  // Survivors first: each pulls the target's partition while the target
  // still serves everything under the old epoch. The target hears last.
  std::vector<Endpoint> targets;
  for (const Member& m : next.members) {
    if (!(m.endpoint == target)) targets.push_back(m.endpoint);
  }
  targets.push_back(target);
  return push_view(next, targets, timeout_ms);
}

PushResult remove_replica(const MembershipView& base, const Endpoint& target,
                          std::uint32_t timeout_ms) {
  LBS_CHECK_MSG(base.find(target) != nullptr, "remove: not a member");

  MembershipView next;
  next.epoch = base.epoch + 1;
  for (const Member& member : base.members) {
    if (!(member.endpoint == target)) next.members.push_back(member);
  }
  LBS_CHECK_MSG(!next.members.empty(), "remove: would empty the fleet");
  validate_view(next);

  std::vector<Endpoint> targets = member_endpoints(next);
  targets.push_back(target);  // best effort — it may already be gone
  return push_view(next, targets, timeout_ms);
}

}  // namespace lbs::service::admin
