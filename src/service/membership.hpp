// Versioned fleet membership.
//
// A MembershipView is the fleet's routing authority: a monotonically
// increasing epoch plus the replica list, each member tagged with its
// lifecycle state (joining -> serving -> draining -> gone). Every party
// that routes keys — FleetClient, lbsd itself when deciding whether a
// request's epoch is stale, lbsctl when orchestrating a join — holds one
// view and converges through exactly one rule, adopt(): an update wins
// iff its epoch is strictly larger. That single comparison is what makes
// convergence delivery-order independent (the property test replays
// shuffled update sequences): whatever order updates arrive in, every
// holder ends at the max-epoch view and never flaps back.
//
// Only Serving members are route-eligible. ring_of() builds the
// consistent-hash ring from the serving subset, so a Joining replica
// (announced, warming up) and a Draining one (serving in-flight work,
// admitting nothing new) are both invisible to routing — the two-phase
// join and the drain handoff fall out of that one rule plus the ring's
// bounded-remap property (support/hash_ring.hpp).
//
// Views travel three ways, all equivalent: the text file format below
// (the config-file watcher on lbsd/FleetClient), the MembershipUpdate /
// MembershipAck wire frames (protocol.hpp), and inline in a WrongEpoch
// plan response so a stale client learns the current view from the
// rejection itself.
//
// File format — line-oriented, '#' comments, written atomically
// (tmp + rename) so a watcher never reads a torn view:
//
//   epoch 7
//   serving tcp:10.0.0.1:4077
//   serving tcp:10.0.0.2:4077
//   draining unix:/tmp/old-replica.sock
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/socket.hpp"
#include "support/hash_ring.hpp"

namespace lbs::service {

enum class ReplicaState : std::uint8_t {
  Joining = 0,   // announced; pulling its partition; not route-eligible
  Serving = 1,   // route-eligible ring member
  Draining = 2,  // serves in-flight work; admits no new unique solves
};

[[nodiscard]] const char* to_string(ReplicaState state);
// Accepts the lowercase state words used by the file format. Throws
// service::Error on anything else.
[[nodiscard]] ReplicaState parse_replica_state(const std::string& word);

struct Member {
  Endpoint endpoint;
  ReplicaState state = ReplicaState::Serving;

  friend bool operator==(const Member&, const Member&) = default;
};

struct MembershipView {
  // 0 means "unversioned": the pre-elasticity world where membership is
  // whatever the client was constructed with. Real views start at 1.
  std::uint64_t epoch = 0;
  std::vector<Member> members;

  [[nodiscard]] const Member* find(const Endpoint& endpoint) const;
  [[nodiscard]] Member* find(const Endpoint& endpoint);
  [[nodiscard]] std::vector<Endpoint> serving_endpoints() const;

  friend bool operator==(const MembershipView&, const MembershipView&) = default;
};

// Throws service::Error unless every member endpoint is valid and the
// endpoints are pairwise distinct (by canonical spec).
void validate_view(const MembershipView& view);

// The one convergence rule: `update` replaces `current` iff
// update.epoch > current.epoch. Returns true when it did. Equal epochs
// never replace — two distinct views must not share an epoch, and
// refusing ties is what keeps replay idempotent.
bool adopt(MembershipView& current, const MembershipView& update);

// Ring over the Serving members only (node ids are canonical endpoint
// specs). May be empty — callers decide whether that is an error.
[[nodiscard]] support::HashRing ring_of(const MembershipView& view,
                                        int virtual_nodes = 128);

// Text format round-trip (see file header). parse_view throws
// service::Error on malformed input and validates the result.
[[nodiscard]] std::string serialize_view(const MembershipView& view);
[[nodiscard]] MembershipView parse_view(const std::string& text);

// File I/O. read_view_file throws service::Error when the file is
// missing or malformed. write_view_file writes tmp-then-rename so a
// concurrent reader sees either the old view or the new one, never a
// prefix.
[[nodiscard]] MembershipView read_view_file(const std::string& path);
void write_view_file(const std::string& path, const MembershipView& view);

}  // namespace lbs::service
