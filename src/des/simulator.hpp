// Discrete-event simulation engine.
//
// A minimal but complete DES core: a virtual clock, a stable event queue
// (ties broken by insertion order, so runs are deterministic), and
// callback-style processes. The grid simulator (gridsim/) uses it to
// replay scatter+compute executions on modeled platforms; it exists as its
// own substrate so richer experiments (perturbations, gathers, multiple
// rounds) compose naturally.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lbs::des {

class Simulator {
 public:
  using Callback = std::function<void()>;

  // Current virtual time in seconds.
  [[nodiscard]] double now() const { return now_; }

  // Schedules `callback` to fire `delay` seconds from now (delay >= 0).
  void schedule(double delay, Callback callback);

  // Schedules at an absolute time (>= now()).
  void schedule_at(double time, Callback callback);

  // Runs until the queue drains (or `until`, if given). Returns the final
  // virtual time. Callbacks may schedule further events.
  double run();
  double run_until(double until);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// A resource serving one request at a time, FIFO — the single-port root
// NIC of the paper's hardware model (Section 2.3). Each request occupies
// the resource for `duration` seconds; `done` fires on completion.
class SerialResource {
 public:
  explicit SerialResource(Simulator& sim) : sim_(sim) {}

  // Enqueues a request. `started` (optional) fires when service begins.
  void request(double duration, Simulator::Callback done,
               Simulator::Callback started = nullptr);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const { return waiting_.size(); }

 private:
  struct Pending {
    double duration;
    Simulator::Callback done;
    Simulator::Callback started;
  };

  void begin(Pending pending);
  void finish(Simulator::Callback done);

  Simulator& sim_;
  bool busy_ = false;
  std::queue<Pending> waiting_;
};

// Piecewise-constant speed multiplier over time. speed 1.0 = nominal.
// Used to model background load: the paper's Figure 4 notes "a peak load
// on sekhmet during the experiment".
class SpeedProfile {
 public:
  // Nominal speed outside all segments is 1.0.
  SpeedProfile() = default;

  // During [from, to), speed is multiplied by `factor` (> 0). Segments may
  // overlap; factors compose multiplicatively.
  void add_segment(double from, double to, double factor);

  [[nodiscard]] double speed_at(double time) const;

  // Time at which `nominal_seconds` of work finishes when started at
  // `start`: solves integral_start^T speed dt = nominal_seconds.
  [[nodiscard]] double finish_time(double start, double nominal_seconds) const;

 private:
  struct Segment {
    double from;
    double to;
    double factor;
  };
  std::vector<Segment> segments_;
};

}  // namespace lbs::des
