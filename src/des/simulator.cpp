#include "des/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace lbs::des {

void Simulator::schedule(double delay, Callback callback) {
  LBS_CHECK_MSG(delay >= 0.0, "scheduling into the past");
  schedule_at(now_ + delay, std::move(callback));
}

void Simulator::schedule_at(double time, Callback callback) {
  LBS_CHECK_MSG(time >= now_, "scheduling into the past");
  LBS_CHECK_MSG(callback != nullptr, "null event callback");
  queue_.push(Event{time, next_seq_++, std::move(callback)});
}

double Simulator::run() {
  return run_until(std::numeric_limits<double>::infinity());
}

double Simulator::run_until(double until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the callback is wasteful, so pop into a local through extraction.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.callback();
  }
  if (queue_.empty()) return now_;
  now_ = std::max(now_, until);
  return now_;
}

void SerialResource::request(double duration, Simulator::Callback done,
                             Simulator::Callback started) {
  LBS_CHECK_MSG(duration >= 0.0, "negative service duration");
  Pending pending{duration, std::move(done), std::move(started)};
  if (busy_) {
    waiting_.push(std::move(pending));
  } else {
    begin(std::move(pending));
  }
}

void SerialResource::begin(Pending pending) {
  busy_ = true;
  if (pending.started) pending.started();
  sim_.schedule(pending.duration,
                [this, done = std::move(pending.done)]() mutable { finish(std::move(done)); });
}

void SerialResource::finish(Simulator::Callback done) {
  // Stay marked busy while the completion callback runs: a request issued
  // from inside `done` must queue behind already-waiting requests (FIFO),
  // not grab the resource out of turn.
  if (done) done();
  busy_ = false;
  if (!waiting_.empty()) {
    Pending next = std::move(waiting_.front());
    waiting_.pop();
    begin(std::move(next));
  }
}

void SpeedProfile::add_segment(double from, double to, double factor) {
  LBS_CHECK_MSG(to > from, "empty speed segment");
  LBS_CHECK_MSG(factor > 0.0, "non-positive speed factor");
  segments_.push_back(Segment{from, to, factor});
}

double SpeedProfile::speed_at(double time) const {
  double speed = 1.0;
  for (const auto& segment : segments_) {
    if (time >= segment.from && time < segment.to) speed *= segment.factor;
  }
  return speed;
}

double SpeedProfile::finish_time(double start, double nominal_seconds) const {
  LBS_CHECK(nominal_seconds >= 0.0);
  if (nominal_seconds == 0.0) return start;

  // Collect breakpoints after `start`; between consecutive breakpoints the
  // speed is constant.
  std::vector<double> breakpoints;
  for (const auto& segment : segments_) {
    if (segment.from > start) breakpoints.push_back(segment.from);
    if (segment.to > start) breakpoints.push_back(segment.to);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                    breakpoints.end());

  double t = start;
  double remaining = nominal_seconds;
  for (double next : breakpoints) {
    double speed = speed_at(t);
    double capacity = (next - t) * speed;
    if (capacity >= remaining) return t + remaining / speed;
    remaining -= capacity;
    t = next;
  }
  // Past the last breakpoint speed is constant forever.
  double speed = speed_at(t);
  LBS_CHECK_MSG(speed > 0.0, "zero speed tail");
  return t + remaining / speed;
}

}  // namespace lbs::des
