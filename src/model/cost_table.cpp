#include "model/cost_table.hpp"

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace lbs::model {

namespace {
// Cost::at is cheap (affine) to moderately priced (tabulated search);
// chunks of a few thousand evaluations amortize the dispatch overhead.
constexpr long long kFillGrain = 8192;
}  // namespace

void fill_cost_rows(const Processor& processor, long long items,
                    std::span<double> comm_row, std::span<double> comp_row,
                    int threads) {
  LBS_CHECK_MSG(items >= 0, "negative item count");
  LBS_CHECK(comm_row.size() == static_cast<std::size_t>(items) + 1);
  LBS_CHECK(comp_row.size() == static_cast<std::size_t>(items) + 1);
  auto fill = [&](long long begin, long long end) {
    for (long long e = begin; e < end; ++e) {
      comm_row[static_cast<std::size_t>(e)] = processor.comm(e);
      comp_row[static_cast<std::size_t>(e)] = processor.comp(e);
    }
  };
  if (threads == 1) {
    fill(0, items + 1);
  } else {
    support::shared_pool().for_range(0, items + 1, kFillGrain, fill);
  }
}

CostTable::CostTable(const Platform& platform, long long items)
    : items_(items), processors_(platform.size()) {
  LBS_CHECK_MSG(processors_ >= 1, "empty platform");
  LBS_CHECK_MSG(items >= 0, "negative item count");
  const std::size_t row = static_cast<std::size_t>(items) + 1;
  storage_.resize(2 * static_cast<std::size_t>(processors_) * row);
  for (int i = 0; i < processors_; ++i) {
    std::span<double> rows(storage_.data() + 2 * static_cast<std::size_t>(i) * row,
                           2 * row);
    fill_cost_rows(platform[i], items, rows.first(row), rows.subspan(row), 0);
  }
}

std::span<const double> CostTable::comm_row(int i) const {
  LBS_CHECK(i >= 0 && i < processors_);
  const std::size_t row = static_cast<std::size_t>(items_) + 1;
  return {storage_.data() + 2 * static_cast<std::size_t>(i) * row, row};
}

std::span<const double> CostTable::comp_row(int i) const {
  LBS_CHECK(i >= 0 && i < processors_);
  const std::size_t row = static_cast<std::size_t>(items_) + 1;
  return {storage_.data() + (2 * static_cast<std::size_t>(i) + 1) * row, row};
}

}  // namespace lbs::model
