#include "model/platform.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lbs::model {

int Grid::add_machine(Machine machine) {
  LBS_CHECK_MSG(!machine.name.empty(), "machine with empty name");
  LBS_CHECK_MSG(machine.cpu_count >= 1, "machine with no CPUs");
  LBS_CHECK_MSG(machine_index(machine.name) < 0, "duplicate machine name");
  machines_.push_back(std::move(machine));
  // Grow the triangular link matrix; new entries are unset except self.
  int n = static_cast<int>(machines_.size());
  links_.resize(static_cast<std::size_t>(n) * (n + 1) / 2);
  link_set_.resize(links_.size(), false);
  links_[link_slot(n - 1, n - 1)] = Cost::zero();
  link_set_[link_slot(n - 1, n - 1)] = true;
  return n - 1;
}

const Machine& Grid::machine(int index) const {
  LBS_CHECK(index >= 0 && index < static_cast<int>(machines_.size()));
  return machines_[static_cast<std::size_t>(index)];
}

int Grid::machine_index(const std::string& name) const {
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (machines_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::size_t Grid::link_slot(int a, int b) const {
  LBS_CHECK(a >= 0 && a < static_cast<int>(machines_.size()));
  LBS_CHECK(b >= 0 && b < static_cast<int>(machines_.size()));
  if (a > b) std::swap(a, b);
  // Row-major upper triangle: slot(a,b) = a*n - a(a-1)/2 + (b - a) is
  // unstable when n grows, so use the column-based triangle instead:
  // all pairs (i,j) with j <= b come before column b+1.
  return static_cast<std::size_t>(b) * (b + 1) / 2 + static_cast<std::size_t>(a);
}

void Grid::set_link(int a, int b, Cost cost) {
  LBS_CHECK_MSG(a != b, "self links are fixed at zero");
  auto slot = link_slot(a, b);
  links_[slot] = std::move(cost);
  link_set_[slot] = true;
}

Cost Grid::link(int a, int b) const {
  auto slot = link_slot(a, b);
  LBS_CHECK_MSG(link_set_[slot], "link " + machines_[static_cast<std::size_t>(a)].name +
                                     " <-> " + machines_[static_cast<std::size_t>(b)].name +
                                     " was never set");
  return links_[slot];
}

bool Grid::has_link(int a, int b) const {
  return link_set_[link_slot(a, b)];
}

void Grid::set_data_home(int machine_idx) {
  LBS_CHECK(machine_idx >= 0 && machine_idx < static_cast<int>(machines_.size()));
  data_home_ = machine_idx;
}

std::vector<ProcessorRef> Grid::all_processors() const {
  std::vector<ProcessorRef> refs;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    for (int c = 0; c < machines_[m].cpu_count; ++c) {
      refs.push_back(ProcessorRef{static_cast<int>(m), c});
    }
  }
  return refs;
}

int Grid::total_cpus() const {
  int total = 0;
  for (const auto& m : machines_) total += m.cpu_count;
  return total;
}

std::string Grid::processor_label(const ProcessorRef& ref) const {
  const Machine& m = machine(ref.machine);
  LBS_CHECK(ref.cpu >= 0 && ref.cpu < m.cpu_count);
  if (m.cpu_count == 1) return m.name;
  return m.name + "#" + std::to_string(ref.cpu);
}

const Processor& Platform::operator[](int i) const {
  LBS_CHECK(i >= 0 && i < size());
  return processors[static_cast<std::size_t>(i)];
}

bool Platform::all_costs_increasing() const {
  return std::all_of(processors.begin(), processors.end(), [](const Processor& p) {
    return p.comm.is_increasing() && p.comp.is_increasing();
  });
}

bool Platform::all_costs_affine() const {
  return std::all_of(processors.begin(), processors.end(), [](const Processor& p) {
    return p.comm.affine().has_value() && p.comp.affine().has_value();
  });
}

Platform make_platform(const Grid& grid, ProcessorRef root,
                       std::span<const ProcessorRef> order) {
  Platform platform;
  auto add = [&](const ProcessorRef& ref) {
    const Machine& m = grid.machine(ref.machine);
    LBS_CHECK_MSG(ref.cpu >= 0 && ref.cpu < m.cpu_count, "bad CPU index");
    Processor p;
    p.label = grid.processor_label(ref);
    p.ref = ref;
    p.comp = m.comp;
    p.comm = (ref == root) ? Cost::zero() : grid.link(root.machine, ref.machine);
    platform.processors.push_back(std::move(p));
  };

  bool saw_root = false;
  for (const auto& ref : order) {
    if (ref == root) {
      LBS_CHECK_MSG(&ref == &order.back(), "root must be ordered last");
      saw_root = true;
      continue;  // appended below
    }
    add(ref);
  }
  (void)saw_root;
  add(root);

  // Distinctness check.
  for (std::size_t i = 0; i < platform.processors.size(); ++i) {
    for (std::size_t j = i + 1; j < platform.processors.size(); ++j) {
      LBS_CHECK_MSG(!(platform.processors[i].ref == platform.processors[j].ref),
                    "duplicate processor in order");
    }
  }
  return platform;
}

Platform make_platform(const Grid& grid, ProcessorRef root) {
  auto order = grid.all_processors();
  std::erase(order, root);
  return make_platform(grid, root, order);
}

}  // namespace lbs::model
