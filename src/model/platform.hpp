// Grid and platform description.
//
// A Grid is the raw resource inventory: machines (with per-item compute
// cost and CPU count), pairwise link costs, and the machine holding the
// input data. A Platform is what the load-balancing algorithms consume: an
// *ordered* list of processors with their Tcomp / Tcomm-from-root cost
// functions, the root being the last processor (paper convention,
// Section 3.1: the root "can only start to process its share after it has
// sent the other data items to the other processors").
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/cost.hpp"

namespace lbs::model {

struct Machine {
  std::string name;
  std::string cpu_description;
  int cpu_count = 1;
  Cost comp;          // Tcomp for one CPU of this machine, per data item
  std::string site;   // machines on the same site share LAN-class links
};

// One CPU of one machine; what the paper calls "a processor".
struct ProcessorRef {
  int machine = -1;  // index into Grid::machines()
  int cpu = 0;       // 0-based CPU index within the machine

  friend bool operator==(const ProcessorRef&, const ProcessorRef&) = default;
};

class Grid {
 public:
  // Adds a machine; returns its index. Names must be unique and non-empty.
  int add_machine(Machine machine);

  [[nodiscard]] const std::vector<Machine>& machines() const { return machines_; }
  [[nodiscard]] const Machine& machine(int index) const;
  [[nodiscard]] int machine_index(const std::string& name) const;  // -1 if absent

  // Symmetric link cost between two machines (time to move x items).
  // Self links are always zero. Unset links throw on access.
  void set_link(int a, int b, Cost cost);
  [[nodiscard]] Cost link(int a, int b) const;
  [[nodiscard]] bool has_link(int a, int b) const;

  void set_data_home(int machine);
  [[nodiscard]] int data_home() const { return data_home_; }

  // Every (machine, cpu) pair, grouped by machine in insertion order.
  [[nodiscard]] std::vector<ProcessorRef> all_processors() const;

  [[nodiscard]] int total_cpus() const;

  [[nodiscard]] std::string processor_label(const ProcessorRef& ref) const;

 private:
  [[nodiscard]] std::size_t link_slot(int a, int b) const;

  std::vector<Machine> machines_;
  std::vector<Cost> links_;       // upper-triangular (including diagonal)
  std::vector<bool> link_set_;
  int data_home_ = -1;
};

// The algorithms' view: processors in scatter order, root last.
struct Processor {
  std::string label;   // e.g. "leda#3"
  ProcessorRef ref;
  Cost comm;           // Tcomm(i, x): time for the root to send x items to i
  Cost comp;           // Tcomp(i, x)
};

struct Platform {
  std::vector<Processor> processors;

  [[nodiscard]] int size() const { return static_cast<int>(processors.size()); }
  [[nodiscard]] const Processor& operator[](int i) const;

  // True when every cost function is increasing (Algorithm 2 requirement).
  [[nodiscard]] bool all_costs_increasing() const;
  // True when every cost function is affine (LP heuristic requirement).
  [[nodiscard]] bool all_costs_affine() const;
};

// Builds a Platform from a Grid given the scatter order. `order` must list
// distinct processors; the processor of `root` placed last. If `order`
// does not already end with `root`, `root` is appended. All non-root
// processors get the machine-to-machine link cost from the root's machine;
// the root gets zero communication cost.
Platform make_platform(const Grid& grid, ProcessorRef root,
                       std::span<const ProcessorRef> order);

// Convenience: platform over all processors of the grid, in grid order
// (root moved to the back).
Platform make_platform(const Grid& grid, ProcessorRef root);

}  // namespace lbs::model
