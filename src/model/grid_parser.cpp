#include "model/grid_parser.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace lbs::model {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != '#') ++i;
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

bool parse_double(const std::string& token, double& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_int(const std::string& token, int& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

// Parses "key value key value ..." pairs starting at tokens[first].
bool parse_pairs(const std::vector<std::string>& tokens, std::size_t first,
                 std::map<std::string, std::string>& out, std::string& error) {
  if ((tokens.size() - first) % 2 != 0) {
    error = "expected key/value pairs";
    return false;
  }
  for (std::size_t i = first; i < tokens.size(); i += 2) {
    if (!out.emplace(tokens[i], tokens[i + 1]).second) {
      error = "duplicate key '" + tokens[i] + "'";
      return false;
    }
  }
  return true;
}

GridParseResult fail(int line_number, const std::string& message) {
  GridParseResult result;
  std::ostringstream out;
  out << "line " << line_number << ": " << message;
  result.error = out.str();
  return result;
}

}  // namespace

GridParseResult parse_grid(std::string_view text) {
  Grid grid;
  struct PendingLink {
    int line;
    std::string a, b;
    Cost cost;
  };
  std::vector<PendingLink> pending_links;
  std::string data_home;
  int data_home_line = 0;

  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_number;

    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "machine") {
      if (tokens.size() < 2) return fail(line_number, "machine needs a name");
      std::map<std::string, std::string> kv;
      std::string error;
      if (!parse_pairs(tokens, 2, kv, error)) return fail(line_number, error);

      Machine machine;
      machine.name = tokens[1];
      machine.cpu_count = 1;
      double alpha = -1.0;
      double fixed = 0.0;
      for (const auto& [key, value] : kv) {
        if (key == "cpus") {
          if (!parse_int(value, machine.cpu_count) || machine.cpu_count < 1) {
            return fail(line_number, "bad cpus value '" + value + "'");
          }
        } else if (key == "alpha") {
          if (!parse_double(value, alpha) || alpha < 0.0) {
            return fail(line_number, "bad alpha value '" + value + "'");
          }
        } else if (key == "fixed") {
          if (!parse_double(value, fixed) || fixed < 0.0) {
            return fail(line_number, "bad fixed value '" + value + "'");
          }
        } else if (key == "cpu") {
          machine.cpu_description = value;
        } else if (key == "site") {
          machine.site = value;
        } else {
          return fail(line_number, "unknown machine key '" + key + "'");
        }
      }
      if (alpha < 0.0) return fail(line_number, "machine needs alpha");
      machine.comp = Cost::affine(fixed, alpha);
      if (grid.machine_index(machine.name) >= 0) {
        return fail(line_number, "duplicate machine '" + machine.name + "'");
      }
      grid.add_machine(std::move(machine));
    } else if (directive == "link") {
      if (tokens.size() < 3) return fail(line_number, "link needs two machine names");
      std::map<std::string, std::string> kv;
      std::string error;
      if (!parse_pairs(tokens, 3, kv, error)) return fail(line_number, error);
      double beta = -1.0;
      double fixed = 0.0;
      for (const auto& [key, value] : kv) {
        if (key == "beta") {
          if (!parse_double(value, beta) || beta < 0.0) {
            return fail(line_number, "bad beta value '" + value + "'");
          }
        } else if (key == "fixed") {
          if (!parse_double(value, fixed) || fixed < 0.0) {
            return fail(line_number, "bad fixed value '" + value + "'");
          }
        } else {
          return fail(line_number, "unknown link key '" + key + "'");
        }
      }
      if (beta < 0.0) return fail(line_number, "link needs beta");
      pending_links.push_back(
          PendingLink{line_number, tokens[1], tokens[2], Cost::affine(fixed, beta)});
    } else if (directive == "data_home") {
      if (tokens.size() != 2) return fail(line_number, "data_home needs one machine name");
      data_home = tokens[1];
      data_home_line = line_number;
    } else {
      return fail(line_number, "unknown directive '" + directive + "'");
    }
  }

  // Resolve forward references.
  for (const auto& link : pending_links) {
    int a = grid.machine_index(link.a);
    int b = grid.machine_index(link.b);
    if (a < 0) return fail(link.line, "unknown machine '" + link.a + "'");
    if (b < 0) return fail(link.line, "unknown machine '" + link.b + "'");
    if (a == b) return fail(link.line, "link from a machine to itself");
    grid.set_link(a, b, link.cost);
  }
  if (!data_home.empty()) {
    int home = grid.machine_index(data_home);
    if (home < 0) return fail(data_home_line, "unknown machine '" + data_home + "'");
    grid.set_data_home(home);
  }
  if (grid.machines().empty()) return fail(line_number, "no machines defined");

  GridParseResult result;
  result.grid = std::move(grid);
  return result;
}

std::string write_grid(const Grid& grid) {
  std::ostringstream out;
  out.precision(12);
  for (const auto& machine : grid.machines()) {
    auto coeffs = machine.comp.affine();
    out << "machine " << machine.name << " cpus " << machine.cpu_count;
    if (coeffs) {
      out << " alpha " << coeffs->per_item;
      if (coeffs->fixed != 0.0) out << " fixed " << coeffs->fixed;
    }
    if (!machine.cpu_description.empty()) out << " cpu " << machine.cpu_description;
    if (!machine.site.empty()) out << " site " << machine.site;
    out << '\n';
  }
  int n = static_cast<int>(grid.machines().size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!grid.has_link(a, b)) continue;
      auto coeffs = grid.link(a, b).affine();
      if (!coeffs) continue;
      out << "link " << grid.machine(a).name << ' ' << grid.machine(b).name
          << " beta " << coeffs->per_item;
      if (coeffs->fixed != 0.0) out << " fixed " << coeffs->fixed;
      out << '\n';
    }
  }
  if (grid.data_home() >= 0) {
    out << "data_home " << grid.machine(grid.data_home()).name << '\n';
  }
  return out.str();
}

}  // namespace lbs::model
