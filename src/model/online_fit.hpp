// Online refinement of affine cost models from streamed timing samples.
//
// model::calibrate is the paper's one-shot, offline path: run a series of
// benchmarks, fit Table 1's α/β once, plan forever. A grid drifts out from
// under that fit — nodes degrade, links congest, the initial measurements
// were simply wrong — so the adaptive runtime (core/adaptive.hpp) needs
// the same fit maintained *incrementally*: every scatter round contributes
// one (items, seconds) sample per processor, recent rounds must outweigh
// stale ones, and the construction-time cost model should anchor the fit
// until real measurements accumulate.
//
// OnlineAffineFit is recursive least squares with an exponential
// forgetting factor, kept as decayed sufficient statistics (the normal
// equations are solved on demand — algebraically the same estimator as
// textbook covariance-form RLS, without its covariance-windup failure
// mode under constant regressors, which is exactly the common case here:
// a converged plan feeds every rank the same item count each round). The
// construction-time prior enters as a ridge penalty pulling the
// coefficients toward it with a chosen pseudo-sample weight, so a fit
// with no (or degenerate) data reproduces the prior instead of exploding.
//
// The intercept-drop decision mirrors model::calibrate byte for byte: when
// the fitted intercept is below intercept_tolerance of the full-transfer
// time at the largest item count seen, the cost collapses to the linear
// model with a proportional refit — the paper's own "latency negligible"
// judgement, applied online.
#pragma once

#include "model/cost.hpp"

namespace lbs::model {

struct OnlineFitOptions {
  // Exponential forgetting factor λ in (0, 1]: sample weights decay by λ
  // per observation, so the effective memory is ~1/(1-λ) samples. 1.0
  // never forgets (pure accumulation, the offline calibrate limit).
  double forgetting = 0.95;
  // Same seam as model::calibrate: drop the intercept when it is below
  // this fraction of slope * max_items_seen.
  double intercept_tolerance = 0.01;
  // ready() requires at least this many observations before the fit
  // should be trusted over the prior.
  int min_samples = 3;
};

// Incrementally fitted t(x) = intercept + slope * x with non-negativity
// clamps, optionally anchored at a prior Cost. Not thread-safe; owners
// (core::AdaptivePlanner) serialize access.
class OnlineAffineFit {
 public:
  explicit OnlineAffineFit(OnlineFitOptions options = {});

  // Anchors the estimate at `prior` (which must be zero, linear, or
  // affine) with the strength of `prior_weight` pseudo-samples: the fit
  // starts exactly at the prior's coefficients and moves only as real
  // samples outweigh it. prior_weight must be > 0.
  OnlineAffineFit(const Cost& prior, double prior_weight,
                  OnlineFitOptions options = {});

  // One measurement: `items` took `seconds`. items must be > 0 (t(0) = 0
  // by the paper's framework, so a zero-item round carries no signal);
  // seconds must be >= 0.
  void observe(long long items, double seconds);

  [[nodiscard]] long long samples() const { return count_; }

  // True once min_samples observations arrived — the point where cost()
  // reflects data rather than prior. Distinct item counts are NOT
  // required: a converged plan feeds each rank the same count every
  // round, and the ridge prior (or, unanchored, the proportional
  // fallback) keeps the estimator well-defined at a single x.
  [[nodiscard]] bool ready() const;

  // Current estimates, clamped to >= 0 (negative costs are measurement
  // noise, never physics — the same clamp model::calibrate applies).
  [[nodiscard]] double slope() const;
  [[nodiscard]] double intercept() const;
  [[nodiscard]] double predict(long long items) const;

  // The fitted Cost with the intercept-drop rule applied: Cost::linear
  // when the intercept is negligible (refit proportionally, as calibrate
  // does), Cost::affine otherwise.
  [[nodiscard]] Cost cost() const;

 private:
  struct Coefficients {
    double intercept = 0.0;
    double slope = 0.0;
  };
  [[nodiscard]] Coefficients solve() const;

  OnlineFitOptions options_;
  double prior_intercept_ = 0.0;
  double prior_slope_ = 0.0;
  double prior_weight_ = 0.0;  // ridge strength; 0 = unanchored
  // Exponentially decayed sufficient statistics of the weighted samples.
  double sw_ = 0.0;   // Σ w
  double sx_ = 0.0;   // Σ w·x
  double sxx_ = 0.0;  // Σ w·x²
  double sy_ = 0.0;   // Σ w·y
  double sxy_ = 0.0;  // Σ w·x·y
  long long count_ = 0;
  long long max_items_ = 0;
  long long first_items_ = 0;
  bool distinct_items_ = false;
};

}  // namespace lbs::model
