// Cost-function model: Tcomm(i, x) and Tcomp(i, x).
//
// The paper's framework (Section 3.1) characterizes each processor by two
// cost functions of the number of data items x:
//   - Tcomp(i, x): time for P_i to compute x items,
//   - Tcomm(i, x): time for the root to send x items to P_i.
// Algorithm 1 only requires them to be non-negative and null at x = 0;
// Algorithm 2 additionally requires them to be increasing; the LP heuristic
// requires them to be affine. This header provides a small closed hierarchy
// covering all of those cases plus measured (tabulated) costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace lbs::model {

// Coefficients of an affine cost t(x) = fixed + per_item * x for x > 0,
// t(0) = 0. ("fixed" models per-message latency; the paper's experiments
// use fixed = 0, i.e. the linear case, because "the network latency is
// negligible compared to the sending time of the data blocks".)
struct AffineCoeffs {
  double fixed = 0.0;
  double per_item = 0.0;
};

// Exact structural description of a built-in cost function — the value
// a Cost serializes to and reconstructs from. Round-tripping through
// Cost::spec() / Cost::from_spec() preserves the function bit-for-bit
// (same coefficients, same fingerprint), which is what lets the planning
// service ship platforms over a wire and still key its plan cache on
// Cost::fingerprint with no loss. Field meaning per kind:
//   Zero:      no fields
//   Linear:    a = per_item
//   Affine:    a = per_item, b = fixed (b != 0; b == 0 normalizes to Linear)
//   Tabulated: samples = the (items, seconds) breakpoints
//   Chunked:   a = per_item, b = step, chunk = chunk size
//   Scaled:    a = factor, inner = the wrapped spec
struct CostSpec {
  enum class Kind : std::uint8_t {
    Zero = 0,
    Linear = 1,
    Affine = 2,
    Tabulated = 3,
    Chunked = 4,
    Scaled = 5,
  };

  Kind kind = Kind::Zero;
  double a = 0.0;
  double b = 0.0;
  long long chunk = 0;
  std::vector<std::pair<long long, double>> samples;
  std::shared_ptr<const CostSpec> inner;  // Scaled only
};

class CostFunction {
 public:
  virtual ~CostFunction() = default;

  // Time in seconds to handle `items` items; items >= 0.
  // Implementations must return 0 for items == 0 (paper's framework).
  [[nodiscard]] virtual double at(long long items) const = 0;

  // True when the function is non-decreasing in x (required by Algorithm 2
  // and by the simultaneous-endings analysis).
  [[nodiscard]] virtual bool is_increasing() const = 0;

  // The affine coefficients when the function is exactly affine (the LP
  // heuristic path); nullopt otherwise.
  [[nodiscard]] virtual std::optional<AffineCoeffs> affine() const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;

  // Structural hash over the exact parameters (bit patterns of the
  // coefficients / samples): two costs with equal fingerprints evaluate
  // identically for every x, up to 64-bit hash collisions. This is what
  // core::PlanCache keys plans on.
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;

  // The serializable description of this function (see CostSpec).
  [[nodiscard]] virtual CostSpec spec() const = 0;
};

// Value-semantic handle to an immutable cost function.
class Cost {
 public:
  Cost();  // zero cost

  // t(x) = per_item * x. The paper's linear case (Section 4).
  static Cost linear(double per_item);

  // t(x) = fixed + per_item * x for x > 0, t(0) = 0.
  static Cost affine(double fixed, double per_item);

  // t(x) = 0 for all x (e.g. Tcomm of the root processor to itself).
  static Cost zero();

  // Piecewise-linear interpolation through measured (items, seconds)
  // samples, extrapolating the last segment's slope; (0,0) is implied.
  // Samples must have strictly increasing item counts.
  static Cost tabulated(std::vector<std::pair<long long, double>> samples);

  // t(x) = per_item * x + step * floor(x / chunk): models chunked
  // transfers where every `chunk` items pay an extra round-trip. Increasing
  // but *not* affine — exercises the general DP path.
  static Cost chunked(double per_item, long long chunk, double step);

  // Communication cost from network terms: a link of `megabits_per_s`
  // moving items of `item_bytes` with per-message `latency_s`. Yields
  // affine(latency_s, 8 * item_bytes / (megabits_per_s * 1e6)) — the
  // translation used when describing grids by NIC specs instead of
  // measured betas (e.g. merlin's 10 Mbit/s hub).
  static Cost from_bandwidth(double megabits_per_s, std::size_t item_bytes,
                             double latency_s = 0.0);

  // t(x) = factor * inner(x), factor > 0: a uniformly slowed (or sped-up)
  // version of an existing cost — how a degraded link enters the planner.
  // Preserves monotonicity; affine coefficients scale through.
  static Cost scaled(Cost inner, double factor);

  // Reconstructs a Cost from its serialized description. The inverse of
  // spec(): from_spec(c.spec()) evaluates and fingerprints identically to
  // c for every built-in kind. Throws lbs::Error on malformed specs (the
  // factory preconditions apply).
  static Cost from_spec(const CostSpec& spec);

  [[nodiscard]] double operator()(long long items) const { return fn_->at(items); }
  [[nodiscard]] double at(long long items) const { return fn_->at(items); }
  [[nodiscard]] bool is_increasing() const { return fn_->is_increasing(); }
  [[nodiscard]] std::optional<AffineCoeffs> affine() const { return fn_->affine(); }
  [[nodiscard]] std::string describe() const { return fn_->describe(); }
  [[nodiscard]] std::uint64_t fingerprint() const { return fn_->fingerprint(); }
  [[nodiscard]] CostSpec spec() const { return fn_->spec(); }

  // Per-item slope when affine/linear; throws otherwise.
  [[nodiscard]] double per_item_slope() const;

 private:
  explicit Cost(std::shared_ptr<const CostFunction> fn) : fn_(std::move(fn)) {}
  std::shared_ptr<const CostFunction> fn_;
};

}  // namespace lbs::model
