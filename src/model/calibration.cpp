#include "model/calibration.hpp"

#include <algorithm>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace lbs::model {

CalibrationResult calibrate(std::span<const std::pair<long long, double>> samples,
                            double intercept_tolerance) {
  LBS_CHECK_MSG(samples.size() >= 2, "calibration needs at least two samples");
  std::vector<double> xs, ys;
  long long max_items = 0;
  xs.reserve(samples.size());
  ys.reserve(samples.size());
  for (const auto& [items, seconds] : samples) {
    LBS_CHECK_MSG(items > 0, "calibration sample with non-positive item count");
    xs.push_back(static_cast<double>(items));
    ys.push_back(seconds);
    max_items = std::max(max_items, items);
  }

  auto fit = support::fit_line(xs, ys);
  CalibrationResult result;
  result.r_squared = fit.r_squared;
  double slope = std::max(fit.slope, 0.0);
  double intercept = std::max(fit.intercept, 0.0);

  double full_transfer = slope * static_cast<double>(max_items);
  if (intercept <= intercept_tolerance * full_transfer) {
    // Latency negligible: refit as purely proportional for a better slope.
    result.linear_model = true;
    result.alpha = std::max(support::fit_proportional(xs, ys), 0.0);
    result.intercept = 0.0;
    result.cost = Cost::linear(result.alpha);
  } else {
    result.linear_model = false;
    result.alpha = slope;
    result.intercept = intercept;
    result.cost = Cost::affine(intercept, slope);
  }
  return result;
}

double rating(double alpha, double reference_alpha) {
  LBS_CHECK(alpha > 0.0 && reference_alpha > 0.0);
  return reference_alpha / alpha;
}

}  // namespace lbs::model
