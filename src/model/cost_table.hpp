// Flattened cost tables: Tcomm/Tcomp evaluated once per (platform, n).
//
// The DP algorithms evaluate Tcomm(i, e) and Tcomp(i, e) O(n) to O(n^2)
// times per processor through the type-erased model::Cost (a virtual call,
// and for tabulated costs a segment search) — that indirection dominates
// the planner's hot loop at paper scale (n = 817,101). A CostTable
// precomputes both functions for every processor over e = 0..n into
// contiguous arrays, so the inner scans become streaming loads.
//
// Memory: 2 * p * (n+1) doubles (~250 MB at the paper's p = 16, n = 817k),
// so the table is an opt-in for repeated planning over the same
// (platform, n) — single plans use per-column scratch rows of the same
// layout (O(n) memory) filled on the fly inside the DP.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/platform.hpp"

namespace lbs::model {

class CostTable {
 public:
  // Evaluates every processor's cost functions for 0..items, in parallel
  // over the shared pool. Requires items >= 0 and a non-empty platform.
  CostTable(const Platform& platform, long long items);

  [[nodiscard]] long long items() const { return items_; }
  [[nodiscard]] int processors() const { return processors_; }

  // Row of Tcomm(i, e) / Tcomp(i, e) for e = 0..items() (items()+1 entries).
  [[nodiscard]] std::span<const double> comm_row(int i) const;
  [[nodiscard]] std::span<const double> comp_row(int i) const;

  [[nodiscard]] std::size_t bytes() const { return storage_.size() * sizeof(double); }

 private:
  long long items_ = 0;
  int processors_ = 0;
  std::vector<double> storage_;  // [proc][comm|comp][e], rows contiguous
};

// Fills caller-owned rows (each items+1 long) for one processor — the
// per-column scratch path used by the DPs when no CostTable is supplied.
// Parallelized over the shared pool; `threads` <= 1 forces a serial fill.
void fill_cost_rows(const Processor& processor, long long items,
                    std::span<double> comm_row, std::span<double> comp_row,
                    int threads);

}  // namespace lbs::model
