// Text format for grid descriptions.
//
// Lets examples and users describe a platform in a small config file
// instead of code:
//
//   # comment
//   machine dinadan  cpus 1  alpha 0.009288  [fixed 0.01] [cpu PIII/933] [site strasbourg]
//   machine leda     cpus 8  alpha 0.009677  site cines
//   link dinadan leda  beta 3.53e-5  [fixed 0.02]
//   data_home dinadan
//
// `alpha`/`beta` are per-item seconds; the optional `fixed` term makes the
// cost affine. Malformed input is data, not a programmer error, so parsing
// returns a result object rather than throwing.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "model/platform.hpp"

namespace lbs::model {

struct GridParseResult {
  std::optional<Grid> grid;     // engaged on success
  std::string error;            // "line N: message" on failure
  [[nodiscard]] bool ok() const { return grid.has_value(); }
};

GridParseResult parse_grid(std::string_view text);

// Serializes a grid back to the text format (machines, set links,
// data_home). Only works for zero/linear/affine costs.
std::string write_grid(const Grid& grid);

}  // namespace lbs::model
