#include "model/testbed.hpp"

#include <cmath>

#include "support/error.hpp"

namespace lbs::model {

namespace {

struct TestbedRow {
  const char* name;
  const char* cpu;
  int cpus;
  double alpha;  // s/ray
  double beta;   // s/ray, from dinadan
  const char* site;
};

constexpr TestbedRow kRows[] = {
    {"dinadan", "PIII/933", 1, 0.009288, 0.0, "strasbourg"},
    {"pellinore", "PIII/800", 1, 0.009365, 1.12e-5, "strasbourg"},
    {"caseb", "XP1800", 1, 0.004629, 1.00e-5, "strasbourg"},
    {"sekhmet", "XP1800", 1, 0.004885, 1.70e-5, "strasbourg"},
    {"merlin", "XP2000", 2, 0.003976, 8.15e-5, "strasbourg"},
    {"seven", "R12K/300", 2, 0.016156, 2.10e-5, "strasbourg"},
    {"leda", "R14K/500", 8, 0.009677, 3.53e-5, "cines"},
};

// Modeled (not measured) link slopes for machine pairs that do not involve
// dinadan; see header comment.
constexpr double kLanBeta = 1.00e-5;
constexpr double kWanBeta = 3.53e-5;

}  // namespace

Grid paper_testbed() {
  Grid grid;
  for (const auto& row : kRows) {
    Machine m;
    m.name = row.name;
    m.cpu_description = row.cpu;
    m.cpu_count = row.cpus;
    m.comp = Cost::linear(row.alpha);
    m.site = row.site;
    grid.add_machine(m);
  }
  int dinadan = grid.machine_index("dinadan");
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    int mi = static_cast<int>(i);
    if (mi == dinadan) continue;
    grid.set_link(dinadan, mi, Cost::linear(kRows[i].beta));
  }
  // Modeled links among non-root machines (root-selection experiments only).
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    for (std::size_t j = i + 1; j < std::size(kRows); ++j) {
      int a = static_cast<int>(i);
      int b = static_cast<int>(j);
      if (a == dinadan || b == dinadan) continue;
      bool same_site = grid.machine(a).site == grid.machine(b).site;
      grid.set_link(a, b, Cost::linear(same_site ? kLanBeta : kWanBeta));
    }
  }
  grid.set_data_home(dinadan);
  return grid;
}

ProcessorRef paper_root(const Grid& grid) {
  int dinadan = grid.machine_index("dinadan");
  LBS_CHECK(dinadan >= 0);
  return ProcessorRef{dinadan, 0};
}

Grid random_grid(support::Rng& rng, int machines, bool affine) {
  LBS_CHECK(machines >= 1);
  Grid grid;
  for (int m = 0; m < machines; ++m) {
    Machine machine;
    machine.name = "node" + std::to_string(m);
    machine.cpu_description = "synthetic";
    machine.cpu_count = static_cast<int>(rng.uniform_int(1, 4));
    double alpha = std::exp(rng.uniform(std::log(1e-3), std::log(3e-2)));
    if (affine) {
      machine.comp = Cost::affine(rng.uniform(0.0, 20e-3), alpha);
    } else {
      machine.comp = Cost::linear(alpha);
    }
    machine.site = (m % 2 == 0) ? "site-a" : "site-b";
    grid.add_machine(machine);
  }
  for (int a = 0; a < machines; ++a) {
    for (int b = a + 1; b < machines; ++b) {
      double beta = std::exp(rng.uniform(std::log(1e-6), std::log(1e-4)));
      if (affine) {
        grid.set_link(a, b, Cost::affine(rng.uniform(0.0, 20e-3), beta));
      } else {
        grid.set_link(a, b, Cost::linear(beta));
      }
    }
  }
  grid.set_data_home(0);
  return grid;
}

}  // namespace lbs::model
