// The paper's experimental testbed (Table 1), plus synthetic grids.
//
// Table 1 of the paper gives, for each of the 16 processors used in the
// experiment, the per-ray compute time α (s/ray) and the per-ray
// communication time β (s/ray) of the link from the root (dinadan):
//
//   machine    CPUs  type      α (s/ray)  rating  β (s/ray)
//   dinadan     1    PIII/933  0.009288   1.00    0          (root)
//   pellinore   1    PIII/800  0.009365   0.99    1.12e-5
//   caseb       1    XP1800    0.004629   2.00    1.00e-5
//   sekhmet     1    XP1800    0.004885   1.90    1.70e-5
//   merlin      2    XP2000    0.003976   2.33    8.15e-5
//   seven       2    R12K/300  0.016156   0.57    2.10e-5
//   leda        8    R14K/500  0.009677   0.95    3.53e-5
//
// dinadan..seven are in Strasbourg; leda is an SGI Origin 3800 at CINES
// (Montpellier). merlin, though local, sat behind a 10 Mbit/s hub, hence
// its poor bandwidth — the paper's ordering policy demotes it to the end.
#pragma once

#include <cstdint>

#include "model/platform.hpp"
#include "support/rng.hpp"

namespace lbs::model {

// Number of rays in the paper's experiment: the full set of seismic events
// of year 1999.
inline constexpr long long kPaperRayCount = 817101;

// Builds the Table 1 grid. Only the dinadan row of the link matrix is
// measured in the paper; links not involving dinadan are modeled (LAN-class
// 1.0e-5 s/item within a site, leda-class 3.53e-5 s/item across sites) and
// are used only by the root-selection experiments, never by the
// figure reproductions.
Grid paper_testbed();

// The root processor of the paper's experiment: dinadan's single CPU
// (also where the input data lives).
ProcessorRef paper_root(const Grid& grid);

// A random heterogeneous grid for property tests and ablations:
// `machines` machines with 1..4 CPUs, compute slopes log-uniform in
// [1e-3, 3e-2] s/item and link slopes log-uniform in [1e-6, 1e-4] s/item.
// When `affine` is true, adds fixed latencies uniform in [0, 20e-3] s.
Grid random_grid(support::Rng& rng, int machines, bool affine);

}  // namespace lbs::model
