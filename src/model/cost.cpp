#include "model/cost.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace lbs::model {

namespace {

// FNV-1a over 64-bit words; doubles are hashed by bit pattern so that
// distinct parameters (including -0.0 vs 0.0) produce distinct streams.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_mix(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return hash_mix(h, bits);
}

class ZeroCost final : public CostFunction {
 public:
  double at(long long items) const override {
    LBS_CHECK(items >= 0);
    return 0.0;
  }
  bool is_increasing() const override { return true; }
  std::optional<AffineCoeffs> affine() const override {
    return AffineCoeffs{0.0, 0.0};
  }
  std::string describe() const override { return "zero"; }
  std::uint64_t fingerprint() const override { return hash_mix(kFnvOffset, std::uint64_t{1}); }
  CostSpec spec() const override { return CostSpec{}; }
};

class LinearCost final : public CostFunction {
 public:
  explicit LinearCost(double per_item) : per_item_(per_item) {
    LBS_CHECK_MSG(per_item >= 0.0, "negative cost slope");
  }
  double at(long long items) const override {
    LBS_CHECK(items >= 0);
    return per_item_ * static_cast<double>(items);
  }
  bool is_increasing() const override { return true; }
  std::optional<AffineCoeffs> affine() const override {
    return AffineCoeffs{0.0, per_item_};
  }
  std::string describe() const override {
    std::ostringstream out;
    out << per_item_ << "*x";
    return out.str();
  }
  std::uint64_t fingerprint() const override {
    return hash_mix(hash_mix(kFnvOffset, std::uint64_t{2}), per_item_);
  }
  CostSpec spec() const override {
    CostSpec out;
    out.kind = CostSpec::Kind::Linear;
    out.a = per_item_;
    return out;
  }

 private:
  double per_item_;
};

class AffineCost final : public CostFunction {
 public:
  AffineCost(double fixed, double per_item) : fixed_(fixed), per_item_(per_item) {
    LBS_CHECK_MSG(fixed >= 0.0 && per_item >= 0.0, "negative affine cost");
  }
  double at(long long items) const override {
    LBS_CHECK(items >= 0);
    if (items == 0) return 0.0;
    return fixed_ + per_item_ * static_cast<double>(items);
  }
  bool is_increasing() const override { return true; }
  std::optional<AffineCoeffs> affine() const override {
    return AffineCoeffs{fixed_, per_item_};
  }
  std::string describe() const override {
    std::ostringstream out;
    out << fixed_ << " + " << per_item_ << "*x";
    return out.str();
  }
  std::uint64_t fingerprint() const override {
    return hash_mix(hash_mix(hash_mix(kFnvOffset, std::uint64_t{3}), fixed_), per_item_);
  }
  CostSpec spec() const override {
    CostSpec out;
    out.kind = CostSpec::Kind::Affine;
    out.a = per_item_;
    out.b = fixed_;
    return out;
  }

 private:
  double fixed_;
  double per_item_;
};

class TabulatedCost final : public CostFunction {
 public:
  explicit TabulatedCost(std::vector<std::pair<long long, double>> samples)
      : samples_(std::move(samples)) {
    LBS_CHECK_MSG(!samples_.empty(), "tabulated cost needs samples");
    long long prev_x = 0;
    double prev_y = 0.0;
    increasing_ = true;
    for (const auto& [x, y] : samples_) {
      LBS_CHECK_MSG(x > prev_x || (prev_x == 0 && x > 0),
                    "tabulated samples must have strictly increasing x > 0");
      LBS_CHECK_MSG(y >= 0.0, "negative cost sample");
      if (y < prev_y) increasing_ = false;
      prev_x = x;
      prev_y = y;
    }
  }

  double at(long long items) const override {
    LBS_CHECK(items >= 0);
    if (items == 0) return 0.0;
    // Find the segment containing `items`; (0,0) is the implicit origin.
    long long x0 = 0;
    double y0 = 0.0;
    for (const auto& [x1, y1] : samples_) {
      if (items <= x1) {
        double t = static_cast<double>(items - x0) / static_cast<double>(x1 - x0);
        return y0 + t * (y1 - y0);
      }
      x0 = x1;
      y0 = y1;
    }
    // Extrapolate using the last segment's slope.
    const auto& [xl, yl] = samples_.back();
    double slope;
    if (samples_.size() >= 2) {
      const auto& [xp, yp] = samples_[samples_.size() - 2];
      slope = (yl - yp) / static_cast<double>(xl - xp);
    } else {
      slope = yl / static_cast<double>(xl);
    }
    return yl + slope * static_cast<double>(items - xl);
  }

  bool is_increasing() const override { return increasing_; }
  std::optional<AffineCoeffs> affine() const override { return std::nullopt; }
  std::string describe() const override {
    std::ostringstream out;
    out << "tabulated[" << samples_.size() << " samples]";
    return out.str();
  }
  std::uint64_t fingerprint() const override {
    std::uint64_t h = hash_mix(kFnvOffset, std::uint64_t{4});
    for (const auto& [x, y] : samples_) {
      h = hash_mix(hash_mix(h, static_cast<std::uint64_t>(x)), y);
    }
    return h;
  }
  CostSpec spec() const override {
    CostSpec out;
    out.kind = CostSpec::Kind::Tabulated;
    out.samples = samples_;
    return out;
  }

 private:
  std::vector<std::pair<long long, double>> samples_;
  bool increasing_ = true;
};

class ChunkedCost final : public CostFunction {
 public:
  ChunkedCost(double per_item, long long chunk, double step)
      : per_item_(per_item), chunk_(chunk), step_(step) {
    LBS_CHECK_MSG(per_item >= 0.0 && step >= 0.0, "negative chunked cost");
    LBS_CHECK_MSG(chunk > 0, "chunk size must be positive");
  }
  double at(long long items) const override {
    LBS_CHECK(items >= 0);
    if (items == 0) return 0.0;
    return per_item_ * static_cast<double>(items) +
           step_ * static_cast<double>(items / chunk_);
  }
  bool is_increasing() const override { return true; }
  std::optional<AffineCoeffs> affine() const override {
    if (step_ == 0.0) return AffineCoeffs{0.0, per_item_};
    return std::nullopt;
  }
  std::string describe() const override {
    std::ostringstream out;
    out << per_item_ << "*x + " << step_ << "*floor(x/" << chunk_ << ")";
    return out.str();
  }
  std::uint64_t fingerprint() const override {
    std::uint64_t h = hash_mix(kFnvOffset, std::uint64_t{5});
    h = hash_mix(h, per_item_);
    h = hash_mix(h, static_cast<std::uint64_t>(chunk_));
    return hash_mix(h, step_);
  }
  CostSpec spec() const override {
    CostSpec out;
    out.kind = CostSpec::Kind::Chunked;
    out.a = per_item_;
    out.b = step_;
    out.chunk = chunk_;
    return out;
  }

 private:
  double per_item_;
  long long chunk_;
  double step_;
};

class ScaledCost final : public CostFunction {
 public:
  ScaledCost(Cost inner, double factor) : inner_(std::move(inner)), factor_(factor) {
    LBS_CHECK_MSG(factor > 0.0, "cost scale factor must be positive");
  }
  double at(long long items) const override { return factor_ * inner_.at(items); }
  bool is_increasing() const override { return inner_.is_increasing(); }
  std::optional<AffineCoeffs> affine() const override {
    auto coeffs = inner_.affine();
    if (!coeffs) return std::nullopt;
    return AffineCoeffs{factor_ * coeffs->fixed, factor_ * coeffs->per_item};
  }
  std::string describe() const override {
    std::ostringstream out;
    out << factor_ << " * (" << inner_.describe() << ")";
    return out.str();
  }
  std::uint64_t fingerprint() const override {
    return hash_mix(hash_mix(hash_mix(kFnvOffset, std::uint64_t{6}), factor_),
                    inner_.fingerprint());
  }
  CostSpec spec() const override {
    CostSpec out;
    out.kind = CostSpec::Kind::Scaled;
    out.a = factor_;
    out.inner = std::make_shared<const CostSpec>(inner_.spec());
    return out;
  }

 private:
  Cost inner_;
  double factor_;
};

}  // namespace

Cost::Cost() : fn_(std::make_shared<ZeroCost>()) {}

Cost Cost::linear(double per_item) {
  return Cost(std::make_shared<LinearCost>(per_item));
}

Cost Cost::affine(double fixed, double per_item) {
  if (fixed == 0.0) return linear(per_item);
  return Cost(std::make_shared<AffineCost>(fixed, per_item));
}

Cost Cost::zero() {
  return Cost(std::make_shared<ZeroCost>());
}

Cost Cost::tabulated(std::vector<std::pair<long long, double>> samples) {
  return Cost(std::make_shared<TabulatedCost>(std::move(samples)));
}

Cost Cost::chunked(double per_item, long long chunk, double step) {
  return Cost(std::make_shared<ChunkedCost>(per_item, chunk, step));
}

Cost Cost::from_bandwidth(double megabits_per_s, std::size_t item_bytes,
                          double latency_s) {
  LBS_CHECK_MSG(megabits_per_s > 0.0, "non-positive bandwidth");
  LBS_CHECK_MSG(item_bytes > 0, "zero item size");
  double per_item =
      static_cast<double>(item_bytes) * 8.0 / (megabits_per_s * 1e6);
  return affine(latency_s, per_item);
}

Cost Cost::scaled(Cost inner, double factor) {
  if (factor == 1.0) return inner;
  return Cost(std::make_shared<ScaledCost>(std::move(inner), factor));
}

Cost Cost::from_spec(const CostSpec& spec) {
  switch (spec.kind) {
    case CostSpec::Kind::Zero: return zero();
    case CostSpec::Kind::Linear: return linear(spec.a);
    case CostSpec::Kind::Affine: return affine(spec.b, spec.a);
    case CostSpec::Kind::Tabulated: return tabulated(spec.samples);
    case CostSpec::Kind::Chunked: return chunked(spec.a, spec.chunk, spec.b);
    case CostSpec::Kind::Scaled:
      LBS_CHECK_MSG(spec.inner != nullptr, "scaled cost spec without inner");
      return scaled(from_spec(*spec.inner), spec.a);
  }
  LBS_CHECK_MSG(false, "unknown cost spec kind");
  return zero();  // unreachable
}

double Cost::per_item_slope() const {
  auto coeffs = fn_->affine();
  LBS_CHECK_MSG(coeffs.has_value(), "per_item_slope on non-affine cost");
  return coeffs->per_item;
}

}  // namespace lbs::model
