#include "model/online_fit.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace lbs::model {

OnlineAffineFit::OnlineAffineFit(OnlineFitOptions options) : options_(options) {
  LBS_CHECK_MSG(options_.forgetting > 0.0 && options_.forgetting <= 1.0,
                "forgetting factor must be in (0, 1]");
  LBS_CHECK_MSG(options_.intercept_tolerance >= 0.0,
                "negative intercept tolerance");
  LBS_CHECK_MSG(options_.min_samples >= 1, "min_samples must be >= 1");
}

OnlineAffineFit::OnlineAffineFit(const Cost& prior, double prior_weight,
                                 OnlineFitOptions options)
    : OnlineAffineFit(options) {
  LBS_CHECK_MSG(prior_weight > 0.0, "prior weight must be > 0");
  auto coeffs = prior.affine();
  LBS_CHECK_MSG(coeffs.has_value(),
                "online fit prior must be zero, linear, or affine");
  prior_intercept_ = coeffs->fixed;
  prior_slope_ = coeffs->per_item;
  prior_weight_ = prior_weight;
}

void OnlineAffineFit::observe(long long items, double seconds) {
  LBS_CHECK_MSG(items > 0, "online fit sample with non-positive item count");
  LBS_CHECK_MSG(seconds >= 0.0, "online fit sample with negative duration");
  const double lambda = options_.forgetting;
  sw_ = lambda * sw_ + 1.0;
  sx_ = lambda * sx_ + static_cast<double>(items);
  sxx_ = lambda * sxx_ + static_cast<double>(items) * static_cast<double>(items);
  sy_ = lambda * sy_ + seconds;
  sxy_ = lambda * sxy_ + static_cast<double>(items) * seconds;
  if (count_ == 0) {
    first_items_ = items;
  } else if (items != first_items_) {
    distinct_items_ = true;
  }
  ++count_;
  max_items_ = std::max(max_items_, items);
}

bool OnlineAffineFit::ready() const { return count_ >= options_.min_samples; }

OnlineAffineFit::Coefficients OnlineAffineFit::solve() const {
  // Ridge-anchored weighted normal equations:
  //   [sw + τ   sx    ] [intercept]   [sy  + τ·b0]
  //   [sx       sxx + τ] [slope    ] = [sxy + τ·a0]
  // where τ is the prior weight and (b0, a0) the prior coefficients. With
  // τ > 0 the system is always nonsingular; with τ = 0 and degenerate x
  // (all samples at one item count) we fall back to the proportional fit
  // through the origin, the only estimator the data supports.
  const double tau = prior_weight_;
  const double a00 = sw_ + tau;
  const double a01 = sx_;
  const double a11 = sxx_ + tau;
  const double b0 = sy_ + tau * prior_intercept_;
  const double b1 = sxy_ + tau * prior_slope_;
  const double det = a00 * a11 - a01 * a01;
  Coefficients out;
  // The determinant of the (PSD) normal matrix degenerates only when the
  // sample x's are (numerically) all equal and there is no prior.
  if (det <= 1e-12 * std::max(a00 * a11, 1.0)) {
    out.intercept = 0.0;
    out.slope = sxx_ > 0.0 ? sxy_ / sxx_ : 0.0;
    return out;
  }
  out.intercept = (b0 * a11 - a01 * b1) / det;
  out.slope = (a00 * b1 - a01 * b0) / det;
  return out;
}

double OnlineAffineFit::slope() const { return std::max(solve().slope, 0.0); }

double OnlineAffineFit::intercept() const {
  return std::max(solve().intercept, 0.0);
}

double OnlineAffineFit::predict(long long items) const {
  LBS_CHECK_MSG(items >= 0, "predict of negative item count");
  if (items == 0) return 0.0;
  return intercept() + slope() * static_cast<double>(items);
}

Cost OnlineAffineFit::cost() const {
  auto coeffs = solve();
  double slope = std::max(coeffs.slope, 0.0);
  double intercept = std::max(coeffs.intercept, 0.0);
  // The reference scale for "negligible": the full transfer at the largest
  // item count seen, or the prior's scale before any data arrived.
  long long scale_items = max_items_ > 0 ? max_items_ : 1;
  double full_transfer = slope * static_cast<double>(scale_items);
  if (intercept <= options_.intercept_tolerance * full_transfer) {
    // Latency negligible: refit proportionally (the calibrate() move),
    // still pulled toward the prior slope by the ridge term.
    const double tau = prior_weight_;
    double denom = sxx_ + tau;
    double proportional =
        denom > 0.0 ? (sxy_ + tau * prior_slope_) / denom : 0.0;
    return Cost::linear(std::max(proportional, 0.0));
  }
  return Cost::affine(intercept, slope);
}

}  // namespace lbs::model
