// Cost-model calibration from timing samples.
//
// The paper's Table 1 "values come from a series of benchmarks we
// performed on our application". This module turns (items, seconds)
// samples — e.g. measured on the mq runtime or the seismic ray tracer —
// into Cost functions, choosing the linear model when the measured
// intercept is negligible (the paper's own argument for dropping latency).
#pragma once

#include <span>
#include <utility>

#include "model/cost.hpp"

namespace lbs::model {

struct CalibrationResult {
  Cost cost;
  double alpha = 0.0;       // fitted per-item slope (s/item)
  double intercept = 0.0;   // fitted fixed term (s); 0 when linear model chosen
  double r_squared = 0.0;
  bool linear_model = false;  // true when the intercept was dropped
};

// Fits an affine cost to samples; drops the intercept (linear model) when
// |intercept| < intercept_tolerance * (slope * max_items), mirroring the
// paper's "latency negligible compared to the sending time" judgement.
// Requires >= 2 samples with distinct item counts; negative fitted values
// are clamped to zero.
CalibrationResult calibrate(std::span<const std::pair<long long, double>> samples,
                            double intercept_tolerance = 0.01);

// Rating relative to a reference per-item cost, as in Table 1's "Rating"
// column (reference/alpha, so faster processors rate higher; the PIII/933
// is the paper's rating-1 reference).
double rating(double alpha, double reference_alpha);

}  // namespace lbs::model
